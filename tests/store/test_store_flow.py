"""Store integration: runtime lifecycle, optimizer warm==cold, CLI surface.

The headline guarantee of the persistent store is that a disk-warm run is
*bit-identical* in QoR to a cold run — the store only ever replays results
the cold computation would have produced.
"""

from __future__ import annotations

import io
import os
import pickle

import pytest

from repro.adders import ripple_carry_adder
from repro.aig import read_aag, write_aag
from repro.cec import check_equivalence
from repro.core import LookaheadOptimizer
from repro.store import MemoryStore, StoreConfig, TieredStore
from repro.store import runtime as store_runtime


@pytest.fixture(autouse=True)
def _isolated_runtime():
    """Every test starts and ends with the default process-local store."""
    store_runtime.reset()
    yield
    store_runtime.reset()


def _dump(aig):
    buf = io.StringIO()
    write_aag(aig, buf)
    return buf.getvalue()


def _optimize(aig, **kwargs):
    # rca4 at these settings routes cones through the SPCF/cache path
    # (larger adders fall to the BDD tier, which bypasses the cone cache).
    with LookaheadOptimizer(max_rounds=4, workers=1, **kwargs) as opt:
        return opt.optimize(aig)


class TestRuntime:
    def test_default_store_is_memory_with_historical_limits(self):
        store = store_runtime.get_store()
        assert isinstance(store, MemoryStore)
        assert not store_runtime.is_persistent()
        assert store.limit("unsat") == store_runtime.MEMORY_LIMITS["unsat"]
        assert store.limit("dp") == store_runtime.MEMORY_LIMITS["dp"]

    def test_configure_path_builds_tiered_store(self, tmp_path):
        path = str(tmp_path / "results.db")
        store = store_runtime.configure(path)
        assert isinstance(store, TieredStore)
        assert store_runtime.is_persistent()
        assert store.memory.limit("unsat") == (
            store_runtime.MEMORY_LIMITS["unsat"]
        )
        # The shipped spec carries the path, never a live store object.
        spec = store_runtime.current_spec()
        assert isinstance(spec, StoreConfig) and spec.path == path
        pickle.dumps(spec)  # must survive the worker task tuple

    def test_configure_none_reverts_to_default(self, tmp_path):
        store_runtime.configure(str(tmp_path / "results.db"))
        store_runtime.configure(None)
        assert not store_runtime.is_persistent()
        assert store_runtime.current_spec() is None

    def test_adopt_is_idempotent(self, tmp_path):
        spec = store_runtime.make_config(str(tmp_path / "results.db"))
        store_runtime.adopt(spec)
        first = store_runtime.get_store()
        store_runtime.adopt(
            store_runtime.make_config(str(tmp_path / "results.db"))
        )
        assert store_runtime.get_store() is first  # no reopen per task
        store_runtime.adopt(None)
        assert store_runtime.get_store() is not first

    def test_default_store_path_resolution(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_STORE", str(tmp_path / "env.db"))
        assert store_runtime.default_store_path() == str(tmp_path / "env.db")
        monkeypatch.delenv("REPRO_STORE")
        monkeypatch.setenv("XDG_CACHE_HOME", str(tmp_path / "xdg"))
        assert store_runtime.default_store_path() == str(
            tmp_path / "xdg" / "repro" / "results.db"
        )


class TestWarmEqualsCold:
    def test_disk_warm_run_is_bit_identical(self, tmp_path):
        path = str(tmp_path / "results.db")
        aig = ripple_carry_adder(4)
        nostore = _dump(_optimize(aig))
        store_runtime.reset()
        cold = _dump(_optimize(aig, store=path))
        assert os.path.exists(path)
        store_runtime.reset()  # drop the memory tier: disk-warm, not hot
        warm = _dump(_optimize(aig, store=path))
        assert warm == cold
        # The store must never change *what* is computed, only how fast.
        assert cold == nostore

    def test_warm_run_hits_the_store(self, tmp_path):
        from repro import perf

        path = str(tmp_path / "results.db")
        aig = ripple_carry_adder(4)
        _optimize(aig, store=path)
        store_runtime.reset()
        before = perf.counter("store.spcf.hit")
        out = _dump(_optimize(aig, store=path))
        assert perf.counter("store.spcf.hit") > before
        assert check_equivalence(aig, read_aag(io.StringIO(out)))

    def test_warm_run_replays_whole_cone_results(self, tmp_path):
        from repro import perf
        from repro.store import SqliteStore

        path = str(tmp_path / "results.db")
        aig = ripple_carry_adder(4)
        cold = _dump(_optimize(aig, store=path))
        store_runtime.reset()
        disk = SqliteStore(path)
        assert disk.entries("cone") > 0  # whole task results persisted
        disk.close()
        before = perf.counter("store.cone.hit")
        warm = _dump(_optimize(aig, store=path))
        # The warm run replays entire per-cone pipeline results (skipping
        # the primary/secondary work), and is still bit-identical.
        assert perf.counter("store.cone.hit") > before
        assert warm == cold

    def test_memory_only_store_skips_cone_replay(self):
        from repro import perf

        aig = ripple_carry_adder(4)
        before = perf.counter("store.cone.miss")
        _optimize(aig)  # default in-memory store: no cone namespace traffic
        assert perf.counter("store.cone.miss") == before
        assert store_runtime.get_store().entries("cone") == 0

    def test_explicit_store_object_is_honoured(self):
        store = MemoryStore()
        aig = ripple_carry_adder(6)
        out = _optimize(aig, store=store)
        assert check_equivalence(aig, out)
        assert store_runtime.get_store() is store


class TestCli:
    def test_optimize_accepts_store_flags(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(
            ["optimize", "x.aag", "--store", "/tmp/r.db"]
        )
        assert args.store == "/tmp/r.db"
        args = build_parser().parse_args(["optimize", "x.aag", "--store"])
        assert args.store == ""
        args = build_parser().parse_args(["optimize", "x.aag", "--no-store"])
        assert args.no_store and args.store is None

    def test_store_spec_precedence(self, monkeypatch, tmp_path):
        from repro.cli import _store_spec, build_parser

        monkeypatch.setenv("REPRO_STORE", str(tmp_path / "env.db"))
        parse = lambda argv: build_parser().parse_args(argv)
        assert _store_spec(
            parse(["optimize", "x.aag", "--no-store"])
        ) is None
        assert _store_spec(
            parse(["optimize", "x.aag", "--store", "/tmp/x.db"])
        ) == "/tmp/x.db"
        assert _store_spec(parse(["optimize", "x.aag"])) == str(
            tmp_path / "env.db"
        )
        monkeypatch.delenv("REPRO_STORE")
        assert _store_spec(parse(["optimize", "x.aag"])) is None

    def test_cache_path_stats_clear(self, tmp_path, capsys):
        from repro.cli import main
        from repro.store import SqliteStore

        path = str(tmp_path / "results.db")
        assert main(["cache", "path", "--store", path]) == 0
        assert capsys.readouterr().out.strip() == path

        # No file yet: stats reports that and succeeds; clear fails.
        assert main(["cache", "stats", "--store", path]) == 0
        assert "no result store" in capsys.readouterr().out
        assert main(["cache", "clear", "--store", path]) == 1
        capsys.readouterr()

        store = SqliteStore(path)
        store.put("spcf", (1,), ("tt", 5, 2))
        store.put("unsat", (2,), True)
        store.close()
        assert main(["cache", "stats", "--store", path]) == 0
        out = capsys.readouterr().out
        assert "spcf" in out and "unsat" in out

        rc = main(["cache", "clear", "--store", path, "--namespace", "spcf"])
        assert rc == 0
        capsys.readouterr()
        reopened = SqliteStore(path)
        assert reopened.entries("spcf") == 0
        assert reopened.entries("unsat") == 1
        reopened.close()
        assert main(["cache", "clear", "--store", path]) == 0
        capsys.readouterr()
        final = SqliteStore(path)
        assert final.stats() == {}
        final.close()


class TestConfigureFailure:
    """Regression: a failing configure() must not half-update the runtime.

    The old order closed the previous store *before* resolving the new
    spec; when resolution raised, the process was left with a recorded
    spec but a closed (or missing) store behind it.  The new spec must be
    resolved first, and only then swapped in.
    """

    def _bad_path(self, tmp_path):
        blocker = tmp_path / "blocker"
        blocker.write_text("not a directory")
        return str(blocker / "sub" / "results.db")

    def test_failed_configure_keeps_previous_store(self, tmp_path):
        good = str(tmp_path / "good.db")
        store = store_runtime.configure(good)
        store.put("ns", (1,), "kept")
        with pytest.raises(OSError):
            store_runtime.configure(self._bad_path(tmp_path))
        # Previous store still installed, still open, still answering.
        assert store_runtime.get_store() is store
        assert store.get("ns", (1,)) == "kept"
        spec = store_runtime.current_spec()
        assert spec is not None and spec.path == good

    def test_failed_configure_from_default_store(self, tmp_path):
        before = store_runtime.get_store()  # default in-memory store
        before.put("ns", (1,), "kept")
        with pytest.raises(OSError):
            store_runtime.configure(self._bad_path(tmp_path))
        assert store_runtime.get_store() is before
        assert before.get("ns", (1,)) == "kept"
        assert store_runtime.current_spec() is None
