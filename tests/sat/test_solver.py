"""Tests for the CDCL SAT solver."""

import itertools
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sat import AigCnf, Solver, implies, is_satisfiable, luby
from repro.aig import AIG, lit_not, po_tts


def brute_force(clauses, n):
    for bits in itertools.product([False, True], repeat=n):
        ok = True
        for cl in clauses:
            if not any(
                bits[abs(l) - 1] if l > 0 else not bits[abs(l) - 1]
                for l in cl
            ):
                ok = False
                break
        if ok:
            return True
    return False


def clause_strategy(n):
    lit = st.integers(1, n).flatmap(
        lambda v: st.sampled_from([v, -v])
    )
    return st.lists(lit, min_size=1, max_size=3)


class TestLuby:
    def test_prefix(self):
        assert [luby(i) for i in range(15)] == [
            1, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8,
        ]


class TestBasics:
    def test_empty_formula_sat(self):
        assert Solver().solve()

    def test_unit_conflict(self):
        s = Solver()
        s.add_clause([1])
        assert not s.add_clause([-1]) or not s.solve()

    def test_tautological_clause_ignored(self):
        s = Solver()
        assert s.add_clause([1, -1])
        assert s.solve()

    def test_zero_literal_rejected(self):
        s = Solver()
        with pytest.raises(ValueError):
            s.add_clause([0])

    def test_simple_implication_chain(self):
        s = Solver()
        for i in range(1, 20):
            s.add_clause([-i, i + 1])
        s.add_clause([1])
        assert s.solve()
        assert all(s.model_value(i) for i in range(1, 21))

    def test_pigeonhole_3_2_unsat(self):
        # 3 pigeons, 2 holes: vars p(i,h) = 2*i + h + 1.
        s = Solver()
        for i in range(3):
            s.add_clause([2 * i + 1, 2 * i + 2])
        for h in range(2):
            for i in range(3):
                for j in range(i + 1, 3):
                    s.add_clause([-(2 * i + h + 1), -(2 * j + h + 1)])
        assert not s.solve()


class TestRandomized:
    @given(
        st.integers(1, 7),
        st.integers(1, 25),
        st.integers(0, 10_000),
    )
    @settings(deadline=None, max_examples=60)
    def test_matches_brute_force(self, n, m, seed):
        rng = random.Random(seed)
        clauses = [
            [rng.choice([1, -1]) * rng.randint(1, n) for _ in range(rng.randint(1, 3))]
            for _ in range(m)
        ]
        s = Solver()
        ok = all(s.add_clause(cl) for cl in clauses)
        result = s.solve() if ok else False
        assert result == brute_force(clauses, n)
        if result:
            model = s.model()
            for cl in clauses:
                assert any(
                    model[abs(l) - 1] if l > 0 else not model[abs(l) - 1]
                    for l in cl
                )

    @given(st.integers(0, 10_000))
    @settings(deadline=None, max_examples=40)
    def test_assumptions_and_reuse(self, seed):
        rng = random.Random(seed)
        n = rng.randint(2, 6)
        clauses = [
            [rng.choice([1, -1]) * rng.randint(1, n) for _ in range(rng.randint(1, 3))]
            for _ in range(rng.randint(1, 15))
        ]
        s = Solver()
        if not all(s.add_clause(cl) for cl in clauses):
            return
        assumptions = [
            rng.choice([1, -1]) * rng.randint(1, n)
            for _ in range(rng.randint(0, 3))
        ]
        expected = brute_force(clauses + [[a] for a in assumptions], n)
        assert s.solve(assumptions) == expected
        # The solver must remain usable (incremental interface).
        assert s.solve() == brute_force(clauses, n)


class TestAigEncoding:
    def test_miter_of_equivalent_forms(self):
        # a&b == !(!a | !b): the XOR miter must be UNSAT.
        aig = AIG()
        a, b = aig.add_pi(), aig.add_pi()
        f = aig.and_(a, b)
        g = lit_not(aig.or_(lit_not(a), lit_not(b)))
        enc = AigCnf()
        m = enc.encode(aig, roots=[f, g])
        x = enc.add_xor(enc.lit(m, f), enc.lit(m, g))
        assert not enc.solver.solve([x])

    def test_is_satisfiable_model(self):
        aig = AIG()
        xs = [aig.add_pi() for _ in range(4)]
        f = aig.and_many([xs[0], lit_not(xs[1]), xs[2]])
        sat, model = is_satisfiable(aig, f)
        assert sat
        assert model[0] and not model[1] and model[2]

    def test_unsat_target(self):
        aig = AIG()
        a = aig.add_pi()
        f = aig.and_(a, lit_not(a))
        sat, model = is_satisfiable(aig, f)
        assert not sat and model is None

    def test_implies(self):
        aig = AIG()
        a, b = aig.add_pi(), aig.add_pi()
        ab = aig.and_(a, b)
        assert implies(aig, ab, a)
        assert not implies(aig, a, ab)

    def test_shared_pi_encoding(self):
        aig1 = AIG()
        a1, b1 = aig1.add_pi(), aig1.add_pi()
        aig1.add_po(aig1.and_(a1, b1))
        aig2 = AIG()
        a2, b2 = aig2.add_pi(), aig2.add_pi()
        aig2.add_po(lit_not(aig2.or_(lit_not(a2), lit_not(b2))))
        enc = AigCnf()
        m1 = enc.encode(aig1)
        pi_vars = [m1[p] for p in aig1.pis]
        m2 = enc.encode(aig2, pi_vars=pi_vars)
        x = enc.add_xor(enc.lit(m1, aig1.pos[0]), enc.lit(m2, aig2.pos[0]))
        assert not enc.solver.solve([x])
