"""Tests for the BDD-domain SPCF and model (mid-size exact mode)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.adders import ripple_carry_adder
from repro.aig import depth, levels, lit_var
from repro.bdd import BDD
from repro.cec import check_equivalence
from repro.core import LookaheadOptimizer, Spcf, spcf_exact_tt
from repro.core.model import BddBlowup, BddModel, ExactModel
from repro.core.spcf import spcf_exact_bdd
from repro.netlist import renode
from repro.tt import TruthTable

from ..aig.test_aig import random_aig


class TestSpcfBdd:
    @given(st.integers(0, 40))
    @settings(deadline=None, max_examples=15)
    def test_matches_tt_spcf(self, seed):
        aig = random_aig(seed, n_pis=5, n_nodes=25, n_pos=1)
        d = levels(aig)[lit_var(aig.pos[0])]
        if d == 0:
            return
        exact = spcf_exact_tt(aig, 0, d)
        bdd = BDD()
        ref = spcf_exact_bdd(aig, 0, d, bdd)
        assert ref is not None
        for m in range(1 << 5):
            asg = {i: bool((m >> i) & 1) for i in range(5)}
            assert bdd.eval(ref, asg) == exact.value(m)

    def test_blowup_returns_none(self):
        aig = ripple_carry_adder(6)
        bdd = BDD()
        ref = spcf_exact_bdd(aig, aig.num_pos - 1, 3, bdd, size_limit=5)
        assert ref is None

    def test_spcf_container_counts(self):
        aig = random_aig(3, n_pis=4, n_nodes=15, n_pos=1)
        d = levels(aig)[lit_var(aig.pos[0])]
        bdd = BDD()
        ref = spcf_exact_bdd(aig, 0, d, bdd)
        spcf = Spcf("bdd", bdd=bdd, ref=ref, num_pis=4)
        assert spcf.count == spcf_exact_tt(aig, 0, d).count_ones()


class TestBddModel:
    @given(st.integers(0, 30))
    @settings(deadline=None, max_examples=10)
    def test_matches_exact_model(self, seed):
        aig = random_aig(seed, n_pis=5, n_nodes=25, n_pos=2)
        net = renode(aig, k=4)
        exact = ExactModel(net)
        bm = BddModel(net)
        for nid in net.topo_order():
            tt = exact.fn(nid)
            assert bm.count(bm.fn(nid)) == tt.count_ones()
        # Cube conditions agree too.
        from repro.sop import Cube

        for nid in list(net.topo_order())[:5]:
            node = net.nodes[nid]
            if not node.fanins:
                continue
            cube = Cube.from_literals([(0, True)], len(node.fanins))
            assert bm.count(bm.cube_condition(nid, cube)) == exact.count(
                exact.cube_condition(nid, cube)
            )

    def test_blowup_raises(self):
        aig = ripple_carry_adder(6)
        net = renode(aig, k=6)
        try:
            BddModel(net, size_limit=3)
        except BddBlowup:
            return
        raise AssertionError("expected BddBlowup")


class TestOptimizerBddMode:
    def test_bdd_mode_equivalence(self):
        aig = ripple_carry_adder(7)  # 15 PIs: bdd territory in auto mode
        opt = LookaheadOptimizer(max_rounds=6, mode="bdd")
        out = opt.optimize(aig)
        assert check_equivalence(aig, out)
        assert depth(out) < depth(aig)

    def test_auto_picks_bdd_between_limits(self):
        from repro.core.lookahead import BDD_MODE_PI_LIMIT, TT_MODE_PI_LIMIT

        opt = LookaheadOptimizer()
        aig = ripple_carry_adder(8)  # 17 PIs
        assert TT_MODE_PI_LIMIT < aig.num_pis <= BDD_MODE_PI_LIMIT
        assert opt._resolve_mode(aig) == "bdd"
