"""Ablation A: SPCF computation mode (exact / over-approximate / simulation).

DESIGN.md calls out the SPCF mode as the key accuracy/efficiency knob: the
paper argues the over-approximation suffices because the SPCF is only a
guide metric.  This bench measures final depth and runtime under each mode
on circuits small enough for the exact computation.

Run:  pytest benchmarks/bench_ablation_spcf.py --benchmark-only -s
"""

from __future__ import annotations

from typing import Dict

import pytest

from repro.adders import ripple_carry_adder
from repro.aig import depth
from repro.bench import control_fabric
from repro.cec import check_equivalence
from repro.core import LookaheadOptimizer

CIRCUITS = {
    "adder4": lambda: ripple_carry_adder(4),
    "adder5": lambda: ripple_carry_adder(5),
    "fabric12": lambda: control_fabric("fab", 12, 6, seed=5, chain_len=8),
}

MODES = {
    "exact": dict(mode="tt", spcf_kind="exact"),
    "overapprox": dict(mode="tt", spcf_kind="overapprox"),
    "bdd": dict(mode="bdd"),
    "simulation": dict(mode="sim", sim_width=512),
}

_results: Dict[str, Dict[str, int]] = {}


@pytest.mark.parametrize("circuit", list(CIRCUITS))
@pytest.mark.parametrize("spcf_mode", list(MODES))
def test_spcf_mode(benchmark, circuit, spcf_mode):
    aig = CIRCUITS[circuit]()

    def run():
        opt = LookaheadOptimizer(max_rounds=8, **MODES[spcf_mode])
        return opt.optimize(aig)

    out = benchmark.pedantic(run, rounds=1, iterations=1)
    assert check_equivalence(aig, out)
    _results.setdefault(circuit, {})[spcf_mode] = depth(out)
    # Any mode must preserve the never-worse guarantee.
    assert depth(out) <= depth(aig)


def test_print_spcf_ablation(benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    print("\n\nAblation A: final AIG depth by SPCF mode")
    print(f"{'circuit':10s}" + "".join(f"{m:>12}" for m in MODES))
    for circuit, per_mode in _results.items():
        print(
            f"{circuit:10s}"
            + "".join(f"{per_mode.get(m, '-'):>12}" for m in MODES)
        )
