"""Structured logic building blocks for the benchmark stand-ins.

These blocks give the generated circuits the character the paper targets:
long sensitizable chains (priority encoders, ripple comparators, carry
chains), wide decodes, shared logic, and multiple near-critical paths.
All functions take an :class:`~repro.aig.AIG` under construction plus
input literals and return output literals.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from ..aig import AIG, CONST0, CONST1, lit_not


def priority_grant(aig: AIG, requests: Sequence[int]) -> List[int]:
    """One-hot grant for the lowest-index asserted request (serial chain)."""
    grants = []
    none_before = CONST1
    for req in requests:
        grants.append(aig.and_(req, none_before))
        none_before = aig.and_(none_before, lit_not(req))
    return grants


def priority_valid(aig: AIG, requests: Sequence[int]) -> int:
    """Any-request flag."""
    return aig.or_many(list(requests))


def encode_onehot(aig: AIG, onehot: Sequence[int], width: int) -> List[int]:
    """Binary encoding of a one-hot vector (OR of selected lines)."""
    outs = []
    for bit in range(width):
        terms = [g for i, g in enumerate(onehot) if (i >> bit) & 1]
        outs.append(aig.or_many(terms) if terms else CONST0)
    return outs


def ripple_compare(
    aig: AIG, a: Sequence[int], b: Sequence[int]
) -> Tuple[int, int]:
    """(equal, a_less_than_b) via a serial scan from the MSB."""
    eq = CONST1
    lt = CONST0
    for ai, bi in zip(reversed(list(a)), reversed(list(b))):
        bit_eq = aig.xnor_(ai, bi)
        bit_lt = aig.and_(lit_not(ai), bi)
        lt = aig.or_(lt, aig.and_(eq, bit_lt))
        eq = aig.and_(eq, bit_eq)
    return eq, lt


def ripple_add(
    aig: AIG, a: Sequence[int], b: Sequence[int], cin: int = CONST0
) -> Tuple[List[int], int]:
    """Ripple-carry sum (the deliberate long chain of the stand-ins)."""
    sums = []
    carry = cin
    for ai, bi in zip(a, b):
        axb = aig.xor_(ai, bi)
        sums.append(aig.xor_(axb, carry))
        carry = aig.or_(aig.and_(ai, bi), aig.and_(axb, carry))
    return sums, carry


def parity_tree(aig: AIG, bits: Sequence[int]) -> int:
    """Balanced XOR tree."""
    return aig.xor_many(list(bits))


def decoder(aig: AIG, sel: Sequence[int]) -> List[int]:
    """Full binary decoder: 2**len(sel) one-hot outputs."""
    outs = []
    for value in range(1 << len(sel)):
        terms = [
            s if (value >> i) & 1 else lit_not(s)
            for i, s in enumerate(sel)
        ]
        outs.append(aig.and_many(terms))
    return outs


def mux_tree(aig: AIG, sel: Sequence[int], inputs: Sequence[int]) -> int:
    """Select ``inputs[sel]`` through a binary multiplexer tree."""
    values = list(inputs)
    need = 1 << len(sel)
    while len(values) < need:
        values.append(CONST0)
    for s in sel:
        values = [
            aig.mux_(s, values[i + 1], values[i])
            for i in range(0, len(values) - 1, 2)
        ] or [CONST0]
    return values[0]


def rotate_left(
    aig: AIG, data: Sequence[int], amount: Sequence[int]
) -> List[int]:
    """Barrel rotator: logarithmic stages of 2**i rotations."""
    word = list(data)
    n = len(word)
    for i, sel in enumerate(amount):
        shift = (1 << i) % n
        rotated = word[-shift:] + word[:-shift] if shift else list(word)
        word = [
            aig.mux_(sel, r, w) for r, w in zip(rotated, word)
        ]
    return word


def cam_match(
    aig: AIG, key: Sequence[int], entry: Sequence[int], valid: int
) -> int:
    """Match line of one CAM entry."""
    eq_bits = [aig.xnor_(k, e) for k, e in zip(key, entry)]
    return aig.and_(valid, aig.and_many(eq_bits))


def alu_slice(
    aig: AIG,
    a: Sequence[int],
    b: Sequence[int],
    op: Sequence[int],
    cin: int = CONST0,
) -> Tuple[List[int], int]:
    """A small ALU: add/and/or/xor selected by two op bits.

    Returns (result bits, carry-out).  The adder path is a ripple chain.
    """
    sums, cout = ripple_add(aig, a, b, cin)
    result = []
    for i, (ai, bi) in enumerate(zip(a, b)):
        and_ = aig.and_(ai, bi)
        or_ = aig.or_(ai, bi)
        xor_ = aig.xor_(ai, bi)
        low = aig.mux_(op[0], and_, sums[i])
        high = aig.mux_(op[0], xor_, or_)
        result.append(aig.mux_(op[1], high, low))
    return result, cout


def hamming_positions(data_bits: int) -> Tuple[int, List[int]]:
    """Number of Hamming check bits and the data-bit coverage masks."""
    r = 1
    while (1 << r) < data_bits + r + 1:
        r += 1
    # Position data bits at non-power-of-two codeword positions.
    positions = []
    pos = 1
    while len(positions) < data_bits:
        if pos & (pos - 1):  # not a power of two
            positions.append(pos)
        pos += 1
    return r, positions


def hamming_checks(aig: AIG, data: Sequence[int]) -> List[int]:
    """Hamming check bits (even parity groups) over the data word."""
    r, positions = hamming_positions(len(data))
    checks = []
    for j in range(r):
        group = [
            d for d, pos in zip(data, positions) if (pos >> j) & 1
        ]
        checks.append(parity_tree(aig, group) if group else CONST0)
    return checks


def secded_correct(
    aig: AIG, data: Sequence[int], checks: Sequence[int]
) -> Tuple[List[int], List[int], int, int]:
    """Single-error-correct / double-error-detect decode.

    Returns (corrected data, syndrome, single_error, double_error); the
    last check bit is treated as the overall parity.
    """
    r, positions = hamming_positions(len(data))
    recomputed = hamming_checks(aig, data)
    syndrome = [
        aig.xor_(c, rc) for c, rc in zip(checks[:r], recomputed)
    ]
    overall = parity_tree(
        aig, list(data) + list(checks[:r])
    )
    overall = aig.xor_(overall, checks[r]) if len(checks) > r else overall
    syndrome_nonzero = aig.or_many(syndrome)
    single_error = aig.and_(syndrome_nonzero, overall)
    double_error = aig.and_(syndrome_nonzero, lit_not(overall))
    corrected = []
    for d, pos in zip(data, positions):
        is_here = aig.and_many(
            [
                syndrome[j] if (pos >> j) & 1 else lit_not(syndrome[j])
                for j in range(r)
            ]
        )
        corrected.append(aig.xor_(d, aig.and_(is_here, single_error)))
    return corrected, syndrome, single_error, double_error
