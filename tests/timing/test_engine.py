"""The unified timing engine vs. independent reference implementations."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.aig import depth, levels, lit_var, required_times
from repro.netlist import compute_levels, renode
from repro.timing import (
    INF,
    AigTimingEngine,
    NetworkTimingEngine,
    PrescribedArrival,
    UnitDelay,
)

from ..aig.test_aig import random_aig


def reference_levels(aig, pi_arrivals=None):
    """Straight-line unit-delay forward pass, independent of the engine."""
    lvl = [0] * aig.num_vars
    for i, pi in enumerate(aig.pis):
        lvl[pi] = pi_arrivals[i] if pi_arrivals else 0
    for var in aig.and_vars():
        f0, f1 = aig.fanins(var)
        lvl[var] = 1 + max(lvl[lit_var(f0)], lvl[lit_var(f1)])
    return lvl


def reference_required(aig, lvl, target):
    req = [INF] * aig.num_vars
    for po in aig.pos:
        req[lit_var(po)] = min(req[lit_var(po)], float(target))
    for var in reversed(list(aig.and_vars())):
        if req[var] == INF:
            continue
        f0, f1 = aig.fanins(var)
        for fi in (f0, f1):
            req[lit_var(fi)] = min(req[lit_var(fi)], req[var] - 1)
    return req


class TestUnitEngineMatchesLegacy:
    @given(st.integers(0, 40))
    @settings(deadline=None, max_examples=25)
    def test_arrivals_match_reference_and_facade(self, seed):
        aig = random_aig(seed)
        engine = AigTimingEngine(aig)
        assert list(engine.arrivals()) == reference_levels(aig)
        assert list(engine.arrivals()) == levels(aig)
        assert all(isinstance(a, int) for a in engine.arrivals())

    @given(st.integers(0, 40))
    @settings(deadline=None, max_examples=25)
    def test_depth_matches_facade(self, seed):
        aig = random_aig(seed)
        assert AigTimingEngine(aig).depth() == depth(aig)

    @given(st.integers(0, 40))
    @settings(deadline=None, max_examples=15)
    def test_required_times_match_reference(self, seed):
        aig = random_aig(seed)
        engine = AigTimingEngine(aig)
        lvl = reference_levels(aig)
        ref = reference_required(aig, lvl, engine.depth())
        got = engine.required_times()
        assert [got[v] for v in range(aig.num_vars)] == ref
        assert got == required_times(aig)

    @given(st.integers(0, 40))
    @settings(deadline=None, max_examples=15)
    def test_critical_vars_have_zero_slack(self, seed):
        aig = random_aig(seed)
        engine = AigTimingEngine(aig)
        arr = engine.arrivals()
        req = engine.required_times()
        for var in engine.critical_vars():
            assert req[var] == arr[var]
            assert engine.slack(var) == 0


class TestIncrementalEqualsFull:
    @given(st.integers(0, 40))
    @settings(deadline=None, max_examples=15)
    def test_appending_extends_incrementally(self, seed):
        import random

        rng = random.Random(seed)
        aig = random_aig(seed)
        engine = AigTimingEngine(aig)
        engine.arrivals()  # full pass over the prefix
        lits = [var * 2 for var in range(1, aig.num_vars)]
        for _ in range(10):
            a = rng.choice(lits) ^ rng.randint(0, 1)
            b = rng.choice(lits) ^ rng.randint(0, 1)
            lits.append(aig.and_(a, b))
        fresh = AigTimingEngine(aig)
        assert list(engine.arrivals()) == list(fresh.arrivals())

    def test_invalidate_recovers(self):
        aig = random_aig(3)
        engine = AigTimingEngine(aig)
        before = list(engine.arrivals())
        engine.invalidate()
        assert list(engine.arrivals()) == before


class TestPrescribedArrivals:
    def test_pi_offsets_propagate(self):
        aig = random_aig(7)
        offsets = {name: i for i, name in enumerate(aig.pi_names)}
        engine = AigTimingEngine(aig, PrescribedArrival(offsets))
        arr = engine.arrivals()
        for i, pi in enumerate(aig.pis):
            assert arr[pi] == i
        ref = reference_levels(aig, pi_arrivals=list(range(aig.num_pis)))
        assert list(arr) == ref

    def test_zero_offsets_match_unit(self):
        aig = random_aig(11)
        zero = {name: 0 for name in aig.pi_names}
        skewed = AigTimingEngine(aig, PrescribedArrival(zero))
        unit = AigTimingEngine(aig, UnitDelay())
        assert list(skewed.arrivals()) == list(unit.arrivals())
        assert skewed.required_times() == unit.required_times()


class TestNetworkEngine:
    def test_levels_match_compute_levels(self):
        aig = random_aig(5)
        net = renode(aig, 4)
        engine = NetworkTimingEngine(net)
        assert dict(engine.levels()) == compute_levels(net)
        assert engine.depth() == max(
            engine.levels()[nid] for nid, _neg in net.pos
        )

    def test_incremental_after_mutation(self):
        from repro.tt import TruthTable

        from repro.adders.generators import ripple_carry_adder

        aig = ripple_carry_adder(3)
        net = renode(aig, 4)
        engine = NetworkTimingEngine(net)
        engine.levels()
        target = next(
            nid for nid in net.topo_order()
            if net.nodes[nid].kind == "node" and len(net.nodes[nid].fanins) >= 2
        )
        node = net.nodes[target]
        n = len(node.fanins)
        net.set_function(
            target, TruthTable.from_function(lambda *xs: not any(xs), n)
        )
        engine.invalidate(target)
        fresh = NetworkTimingEngine(net)
        assert dict(engine.levels()) == dict(fresh.levels())

    def test_critical_nodes_zero_slack(self):
        aig = random_aig(13)
        net = renode(aig, 4)
        engine = NetworkTimingEngine(net)
        req = engine.required_times()
        lvl = engine.levels()
        for nid in engine.critical_nodes():
            assert req[nid] == lvl[nid]
