"""Technology-independent networks: DAGs of complex-function nodes.

This is the paper's intermediate representation ``T``: each internal node
carries an arbitrary local Boolean function (stored as a truth table over
its ordered fan-ins).  The lookahead algorithms simplify these local
functions in place, so nodes are mutable.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from ..tt import TruthTable


class NetNode:
    """One network object: a PI or an internal complex-function node."""

    __slots__ = ("nid", "kind", "fanins", "tt", "name")

    def __init__(
        self,
        nid: int,
        kind: str,
        fanins: List[int],
        tt: Optional[TruthTable],
        name: str,
    ):
        self.nid = nid
        self.kind = kind  # 'pi' or 'node'
        self.fanins = fanins
        self.tt = tt
        self.name = name

    def __repr__(self) -> str:
        if self.kind == "pi":
            return f"NetNode(pi {self.name})"
        return f"NetNode({self.nid}, fanins={self.fanins})"


class Network:
    """A mutable technology-independent network."""

    def __init__(self) -> None:
        self.nodes: Dict[int, NetNode] = {}
        self.pis: List[int] = []
        self.pos: List[Tuple[int, bool]] = []  # (node id, complemented)
        self.po_names: List[str] = []
        self._next_id = 0

    # -- construction -----------------------------------------------------------

    def add_pi(self, name: Optional[str] = None) -> int:
        nid = self._next_id
        self._next_id += 1
        self.nodes[nid] = NetNode(
            nid, "pi", [], None, name or f"pi{len(self.pis)}"
        )
        self.pis.append(nid)
        return nid

    def add_node(
        self, fanins: Sequence[int], tt: TruthTable, name: Optional[str] = None
    ) -> int:
        """Add an internal node computing ``tt`` over the ordered fan-ins."""
        if tt.nvars != len(fanins):
            raise ValueError("truth table width must match fan-in count")
        for f in fanins:
            if f not in self.nodes:
                raise ValueError(f"unknown fan-in {f}")
        nid = self._next_id
        self._next_id += 1
        self.nodes[nid] = NetNode(
            nid, "node", list(fanins), tt, name or f"n{nid}"
        )
        return nid

    def add_const(self, value: bool) -> int:
        """Constant node (zero fan-ins)."""
        return self.add_node([], TruthTable.const(value, 0), name="const")

    def add_po(self, nid: int, neg: bool = False, name: Optional[str] = None) -> int:
        self.pos.append((nid, neg))
        self.po_names.append(name or f"po{len(self.pos) - 1}")
        return len(self.pos) - 1

    def set_function(self, nid: int, tt: TruthTable) -> None:
        """Replace a node's local function (same fan-ins)."""
        node = self.nodes[nid]
        if node.kind != "node":
            raise ValueError("cannot set the function of a PI")
        if tt.nvars != len(node.fanins):
            raise ValueError("truth table width must match fan-in count")
        node.tt = tt

    # -- traversal --------------------------------------------------------------

    def topo_order(self) -> List[int]:
        """All internal node ids in topological order (PIs excluded).

        Dangling nodes (e.g. freshly added window functions not yet driving
        a PO) are included so global-function models stay complete.
        """
        state: Dict[int, int] = {}
        order: List[int] = []
        roots = [nid for nid, n in self.nodes.items() if n.kind == "node"]
        for root in roots:
            stack = [root]
            while stack:
                nid = stack[-1]
                node = self.nodes[nid]
                if state.get(nid) == 2 or node.kind == "pi":
                    state[nid] = 2
                    stack.pop()
                    continue
                if state.get(nid) == 1:
                    state[nid] = 2
                    order.append(nid)
                    stack.pop()
                    continue
                state[nid] = 1
                for f in node.fanins:
                    if state.get(f, 0) == 0:
                        stack.append(f)
                    elif state.get(f) == 1:
                        raise ValueError("combinational cycle detected")
        return order

    def fanout_map(self) -> Dict[int, List[int]]:
        """Node id -> list of internal nodes reading it."""
        fanouts: Dict[int, List[int]] = {nid: [] for nid in self.nodes}
        for nid in self.topo_order():
            for f in self.nodes[nid].fanins:
                fanouts[f].append(nid)
        return fanouts

    def fanin_cone(self, roots: Iterable[int]) -> Set[int]:
        """All node ids (PIs included) in the transitive fan-in of roots."""
        seen: Set[int] = set()
        stack = list(roots)
        while stack:
            nid = stack.pop()
            if nid in seen:
                continue
            seen.add(nid)
            stack.extend(self.nodes[nid].fanins)
        return seen

    def num_internal(self) -> int:
        return sum(1 for n in self.nodes.values() if n.kind == "node")

    def node_fingerprints(self) -> Dict[int, int]:
        """Structural fingerprint of every node's global function.

        Two nodes (in the same or different networks) with equal
        fingerprints compute, up to hash collision, the same function of
        the same *positional* PIs — PIs are identified by their index in
        ``pis``, not by id or name, so fingerprints are comparable across
        networks that share a PI space (e.g. the primary and secondary
        nets of a care checker).  Only integers are hashed, keeping the
        values stable across processes regardless of ``PYTHONHASHSEED``.
        """
        fps: Dict[int, int] = {}
        for i, pi in enumerate(self.pis):
            fps[pi] = hash((0x9E3779B9, i))
        for nid in self.topo_order():
            node = self.nodes[nid]
            fps[nid] = hash(
                (node.tt.nvars, node.tt.bits)
                + tuple(fps[f] for f in node.fanins)
            )
        return fps

    # -- evaluation ---------------------------------------------------------------

    def evaluate(self, assignment: Sequence[bool]) -> List[bool]:
        """Evaluate all POs on one input assignment (by PI order)."""
        values: Dict[int, bool] = {
            pi: bool(v) for pi, v in zip(self.pis, assignment)
        }
        for nid in self.topo_order():
            node = self.nodes[nid]
            values[nid] = node.tt.evaluate([values[f] for f in node.fanins])
        out = []
        for nid, neg in self.pos:
            v = values[nid]
            out.append((not v) if neg else v)
        return out

    def global_tts(self) -> Dict[int, TruthTable]:
        """Global function of every node over the PIs (small PI counts)."""
        n = len(self.pis)
        values: Dict[int, TruthTable] = {
            pi: TruthTable.var(i, n) for i, pi in enumerate(self.pis)
        }
        for nid in self.topo_order():
            node = self.nodes[nid]
            if not node.fanins:
                values[nid] = TruthTable.const(node.tt.is_const1, n)
            else:
                values[nid] = node.tt.compose([values[f] for f in node.fanins])
        return values

    def po_tts(self) -> List[TruthTable]:
        """Global PO functions over the PIs."""
        values = self.global_tts()
        out = []
        for nid, neg in self.pos:
            t = values[nid]
            out.append(~t if neg else t)
        return out

    def extract_po_cone(self, po_index: int) -> "Network":
        """Standalone copy of one PO's fan-in cone.

        The copy keeps the *full* PI list (order and count), so global
        function models and pattern words stay aligned with the parent
        network; internal ids are renumbered.
        """
        root, neg = self.pos[po_index]
        cone = self.fanin_cone([root])
        out = Network()
        id_map: Dict[int, int] = {}
        for pi in self.pis:
            id_map[pi] = out.add_pi(self.nodes[pi].name)
        for nid in self.topo_order():
            if nid not in cone:
                continue
            node = self.nodes[nid]
            id_map[nid] = out.add_node(
                [id_map[f] for f in node.fanins], node.tt, node.name
            )
        out.add_po(id_map[root], neg, self.po_names[po_index])
        return out

    def to_payload(self) -> tuple:
        """Codec-safe exact encoding (ints/strs/tuples only).

        Inverse of :meth:`from_payload`; preserves node ids, insertion
        order, names, and ``_next_id`` exactly, so a round-tripped
        network is indistinguishable from the original to every
        consumer (including id-based splicing).  Used by the result
        store to persist per-cone pipeline results.
        """
        return (
            tuple(
                (
                    n.nid,
                    n.kind,
                    tuple(n.fanins),
                    None if n.tt is None else (n.tt.bits, n.tt.nvars),
                    n.name,
                )
                for n in self.nodes.values()
            ),
            tuple(self.pis),
            tuple((nid, bool(neg)) for nid, neg in self.pos),
            tuple(self.po_names),
            self._next_id,
        )

    @classmethod
    def from_payload(cls, payload: tuple) -> "Network":
        """Rebuild a network from :meth:`to_payload` output."""
        nodes, pis, pos, po_names, next_id = payload
        net = cls()
        for nid, kind, fanins, tt, name in nodes:
            net.nodes[nid] = NetNode(
                nid,
                kind,
                list(fanins),
                None if tt is None else TruthTable(tt[0], tt[1]),
                name,
            )
        net.pis = list(pis)
        net.pos = [(nid, bool(neg)) for nid, neg in pos]
        net.po_names = list(po_names)
        net._next_id = next_id
        return net

    def clone(self) -> "Network":
        """Deep copy (node functions are immutable and shared)."""
        dup = Network()
        dup._next_id = self._next_id
        for nid, node in self.nodes.items():
            dup.nodes[nid] = NetNode(
                node.nid, node.kind, list(node.fanins), node.tt, node.name
            )
        dup.pis = list(self.pis)
        dup.pos = list(self.pos)
        dup.po_names = list(self.po_names)
        return dup

    def __repr__(self) -> str:
        return (
            f"Network(pis={len(self.pis)}, pos={len(self.pos)}, "
            f"nodes={self.num_internal()})"
        )
