"""Section 4 case study: deriving the fast adders from a ripple-carry adder.

Reconstructs the paper's four optimal decompositions of the 2-bit adder
carry-out (Sec. 4) — carry lookahead, carry select, carry bypass, and the
paper's new overlapping decomposition — verifies each against the ripple
carry-out, and reports the AIG level of every form.  It then reproduces
the Table 1 comparison for n = 2..16.

Run:  python examples/adder_case_study.py
"""

from repro.adders import optimal_cla_levels, ripple_carry_adder
from repro.aig import AIG, CONST0, CONST1, depth, node_tts, lit_var, lit_neg
from repro.cec import lits_equivalent
from repro.core import lookahead_flow
from repro.opt import abc_resyn2rs, dc_map_effort_high, sis_best


def two_bit_carry_forms():
    """Build c_out of a 2-bit adder in the paper's four decompositions."""
    aig = AIG()
    a1, a2 = aig.add_pi("a1"), aig.add_pi("a2")
    b1, b2 = aig.add_pi("b1"), aig.add_pi("b2")
    cin = aig.add_pi("cin")
    g1, p1 = aig.and_(a1, b1), aig.or_(a1, b1)
    g2, p2 = aig.and_(a2, b2), aig.or_(a2, b2)
    x1, x2 = aig.xor_(a1, b1), aig.xor_(a2, b2)

    # Reference: ripple carry, c_out = g2 + p2 (g1 + p1 cin).
    ripple = aig.or_(g2, aig.and_(p2, aig.or_(g1, aig.and_(p1, cin))))

    forms = {}
    # Carry lookahead: two disjoint windows (Σ2 = a2^b2, Σ1 = a1^b1);
    # when a slice propagates, the carry passes; otherwise it generates a_i.
    forms["carry lookahead"] = aig.or_(
        aig.and_(x2, aig.or_(aig.and_(x1, cin), aig.and_(x1 ^ 1, a1))),
        aig.and_(x2 ^ 1, a2),
    )
    # Carry select: Σ1 = cin, y(cin=1) = g2 + p2 p1, y(cin=0) = g2 + p2 g1.
    y1 = aig.or_(g2, aig.and_(p2, p1))
    y0 = aig.or_(g2, aig.and_(p2, g1))
    forms["carry select"] = aig.mux_(cin, y1, y0)
    # Carry bypass: Σ1 = p2 p1 cin, y1 = 1, y0 = g2 + p2 g1 -> Σ1 + y0.
    sigma_bypass = aig.and_(aig.and_(p2, p1), cin)
    forms["carry bypass"] = aig.or_(sigma_bypass, y0)
    # New decomposition: Σ1 = cin + g2 + p2 g1, y1' = g2 + p2 p1, y0' = 0
    # -> c_out = Σ1 (g2 + p2 p1).
    sigma_new = aig.or_(cin, aig.or_(g2, aig.and_(p2, g1)))
    forms["new decomposition"] = aig.and_(sigma_new, y1)
    return aig, ripple, forms


def case_study() -> None:
    print("== 2-bit adder carry decompositions (paper Sec. 4) ==")
    aig, ripple, forms = two_bit_carry_forms()
    tts = node_tts(aig)

    def level(lit: int) -> int:
        from repro.aig import levels

        return levels(aig)[lit_var(lit)]

    print(f"  ripple carry      : {level(ripple)} levels (reference)")
    for name, lit in forms.items():
        ok = lits_equivalent(aig, lit, ripple)
        print(
            f"  {name:18s}: {level(lit)} levels, "
            f"equivalent={'yes' if ok else 'NO'}"
        )
        assert ok


def table1() -> None:
    print("\n== Table 1: best AIG levels for n-bit ripple-carry adders ==")
    header = f"{'n':>3} {'Optimum':>8} {'SIS':>6} {'ABC':>6} {'DC':>6} {'Lookahead':>10}"
    print(header)
    for n in (2, 4, 8, 16):
        aig = ripple_carry_adder(n)
        row = [
            optimal_cla_levels(n),
            depth(sis_best(aig)),
            depth(abc_resyn2rs(aig)),
            depth(dc_map_effort_high(aig)),
            depth(lookahead_flow(aig)),
        ]
        print(f"{n:>3} {row[0]:>8} {row[1]:>6} {row[2]:>6} {row[3]:>6} {row[4]:>10}")


if __name__ == "__main__":
    case_study()
    table1()
