"""Cone, fanout, transitive-fanout, and structural-hash utilities on AIGs."""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence, Set

from .aig import AIG, lit_neg, lit_var


def fanin_cone_vars(aig: AIG, lits: Iterable[int]) -> Set[int]:
    """All variables in the transitive fan-in of the given literals."""
    seen: Set[int] = set()
    stack = [lit_var(lit) for lit in lits]
    while stack:
        var = stack.pop()
        if var in seen:
            continue
        seen.add(var)
        if aig.is_and(var):
            f0, f1 = aig.fanins(var)
            stack.append(lit_var(f0))
            stack.append(lit_var(f1))
    return seen


def cone_pis(aig: AIG, lits: Iterable[int]) -> List[int]:
    """PI variables in the transitive fan-in, in PI order."""
    cone = fanin_cone_vars(aig, lits)
    return [var for var in aig.pis if var in cone]


def critical_cone_vars(aig: AIG, engine=None) -> Set[int]:
    """Zero-slack variables inside the fan-in cones of critical POs.

    ``engine`` is a :class:`repro.timing.AigTimingEngine` (unit delay by
    default), so criticality follows whatever delay model drives the flow
    — under prescribed PI arrivals the critical cone chases the latest
    *arrivals*, not the deepest paths.
    """
    if engine is None:
        from ..timing import AigTimingEngine

        engine = AigTimingEngine(aig)
    crit = engine.critical_vars()
    cone = fanin_cone_vars(
        aig, [aig.pos[i] for i in engine.critical_pos()]
    )
    return crit & cone


def extract_critical_cone(aig: AIG, po_index: int, engine=None) -> AIG:
    """Standalone copy of one critical PO's fan-in cone (full PI space).

    Equivalent to ``aig.extract([aig.pos[po_index]])``; the engine argument
    exists so callers that already hold timing analysis reuse it for the
    criticality bookkeeping around the extraction.
    """
    return aig.extract([aig.pos[po_index]])


def fanout_lists(aig: AIG) -> List[List[int]]:
    """For each variable, the list of AND variables that read it."""
    fanouts: List[List[int]] = [[] for _ in range(aig.num_vars)]
    for var in aig.and_vars():
        f0, f1 = aig.fanins(var)
        fanouts[lit_var(f0)].append(var)
        if lit_var(f1) != lit_var(f0):
            fanouts[lit_var(f1)].append(var)
    return fanouts


def fanout_counts(aig: AIG) -> List[int]:
    """Reference count of each variable (PO references included)."""
    counts = [0] * aig.num_vars
    for var in aig.and_vars():
        f0, f1 = aig.fanins(var)
        counts[lit_var(f0)] += 1
        counts[lit_var(f1)] += 1
    for po in aig.pos:
        counts[lit_var(po)] += 1
    return counts


def tfo_vars(aig: AIG, roots: Iterable[int]) -> Set[int]:
    """Transitive fan-out variable set of the given root variables."""
    fanouts = fanout_lists(aig)
    seen: Set[int] = set()
    stack = list(roots)
    while stack:
        var = stack.pop()
        if var in seen:
            continue
        seen.add(var)
        stack.extend(fanouts[var])
    return seen


_MASK64 = (1 << 64) - 1
_PI_SEED = 0x9E3779B97F4A7C15
_AND_SEED = 0xC2B2AE3D27D4EB4F


def _mix(a: int, b: int) -> int:
    """Deterministic 64-bit hash combine (splitmix64-style finalizer)."""
    h = (a * 0xFF51AFD7ED558CCD + b * 0xC4CEB9FE1A85EC53 + 1) & _MASK64
    h ^= h >> 33
    h = (h * 0xFF51AFD7ED558CCD) & _MASK64
    h ^= h >> 29
    return h


def cone_fingerprint(aig: AIG, lits: Iterable[int]) -> int:
    """Canonical 64-bit structural hash of the fan-in cones of ``lits``.

    Two cones hash equal iff they compute the same literal structure over
    the same PIs (identified by PI *position*, so the hash survives the
    renumbering done by ``AIG.extract``).  Complement edges participate,
    and the order of ``lits`` matters — ``(fp of [a, b]) != (fp of [b, a])``
    in general.  Deterministic across processes and runs (no ``hash()``).
    """
    pi_pos = {var: i for i, var in enumerate(aig.pis)}
    memo: Dict[int, int] = {0: _mix(_AND_SEED, 0)}

    def var_hash(root: int) -> int:
        stack = [root]
        while stack:
            var = stack[-1]
            if var in memo:
                stack.pop()
                continue
            if aig.is_pi(var):
                memo[var] = _mix(_PI_SEED, pi_pos[var])
                stack.pop()
                continue
            f0, f1 = aig.fanins(var)
            pending = [
                v for v in (lit_var(f0), lit_var(f1)) if v not in memo
            ]
            if pending:
                stack.extend(pending)
                continue
            stack.pop()
            h0 = _mix(memo[lit_var(f0)], int(lit_neg(f0)))
            h1 = _mix(memo[lit_var(f1)], int(lit_neg(f1)))
            if h0 > h1:
                h0, h1 = h1, h0
            memo[var] = _mix(_mix(_AND_SEED, h0), h1)
        return memo[root]

    fp = _mix(_PI_SEED, aig.num_pis)
    for lit in lits:
        fp = _mix(fp, _mix(var_hash(lit_var(lit)), int(lit_neg(lit))))
    return fp


def aig_fingerprint(aig: AIG) -> int:
    """Structural hash of a whole AIG: all PO cones in PO order."""
    return cone_fingerprint(aig, aig.pos)


def var_fingerprints(aig: AIG) -> List[int]:
    """Per-variable structural hashes over positional PIs, for all vars.

    ``result[v]`` equals the ``var_hash`` :func:`cone_fingerprint`
    computes internally: a deterministic 64-bit digest of ``v``'s fan-in
    cone, equal across processes and across isomorphic cones in
    different AIGs.  One topological pass tabulates every variable, so
    callers that key many per-literal cache entries (e.g. redundancy
    verdicts) pay for the whole table once.
    """
    pi_pos = {var: i for i, var in enumerate(aig.pis)}
    fps = [0] * aig.num_vars
    fps[0] = _mix(_AND_SEED, 0)
    for var in aig.pis:
        fps[var] = _mix(_PI_SEED, pi_pos[var])
    for var in aig.and_vars():
        f0, f1 = aig.fanins(var)
        h0 = _mix(fps[lit_var(f0)], int(lit_neg(f0)))
        h1 = _mix(fps[lit_var(f1)], int(lit_neg(f1)))
        if h0 > h1:
            h0, h1 = h1, h0
        fps[var] = _mix(_mix(_AND_SEED, h0), h1)
    return fps


def lit_fingerprint(fps: Sequence[int], lit: int) -> int:
    """Digest of a literal given a :func:`var_fingerprints` table."""
    return _mix(fps[lit_var(lit)], int(lit_neg(lit)))


def mffc_vars(aig: AIG, root: int) -> Set[int]:
    """Maximum fanout-free cone of ``root``: nodes used only inside it."""
    counts = fanout_counts(aig)
    mffc: Set[int] = set()
    stack = [root]
    while stack:
        var = stack.pop()
        if var in mffc or not aig.is_and(var):
            continue
        mffc.add(var)
        f0, f1 = aig.fanins(var)
        for fv in (lit_var(f0), lit_var(f1)):
            # A fanin joins the MFFC when all its references are inside.
            if aig.is_and(fv):
                outside = counts[fv] - sum(
                    1
                    for u in mffc
                    if fv in (lit_var(aig.fanins(u)[0]), lit_var(aig.fanins(u)[1]))
                )
                if outside <= 0:
                    stack.append(fv)
    return mffc
