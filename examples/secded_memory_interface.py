"""Design flow walkthrough: a SECDED memory-interface corrector.

Shows the library as a downstream user would drive it end to end:

1. build a 16-bit SECDED corrector (the C1908 stand-in's core);
2. optimize it with the lookahead flow;
3. technology-map the result and run STA/power;
4. export gate-level Verilog and an AIGER file for other tools.

Run:  python examples/secded_memory_interface.py
"""

import io

from repro.aig import AIG, depth, write_aag
from repro.bench import blocks
from repro.cec import check_equivalence
from repro.core import LookaheadOptimizer, lookahead_flow
from repro.mapping import (
    dynamic_power_uw,
    map_aig,
    mapped_delay,
    write_verilog,
)


def build_corrector() -> AIG:
    aig = AIG()
    data = [aig.add_pi(f"d{i}") for i in range(16)]
    checks = [aig.add_pi(f"p{i}") for i in range(6)]
    corrected, syndrome, single, double = blocks.secded_correct(
        aig, data, checks
    )
    for i, bit in enumerate(corrected):
        aig.add_po(bit, f"q{i}")
    aig.add_po(single, "single_err")
    aig.add_po(double, "double_err")
    return aig


def main() -> None:
    aig = build_corrector()
    print(
        f"SECDED corrector: {aig.num_pis} PIs, {aig.num_pos} POs, "
        f"{aig.num_ands()} ANDs, {depth(aig)} levels"
    )

    optimized = lookahead_flow(
        aig, LookaheadOptimizer(max_rounds=6, max_outputs_per_round=6)
    )
    assert check_equivalence(aig, optimized)
    print(
        f"optimized: {optimized.num_ands()} ANDs, "
        f"{depth(optimized)} levels (equivalence verified)"
    )

    netlist = map_aig(optimized)
    print(
        f"mapped: {netlist.num_gates} gates, area {netlist.area:.1f}, "
        f"delay {mapped_delay(netlist):.0f} ps, "
        f"power {dynamic_power_uw(netlist):.1f} uW @ 1 GHz"
    )

    verilog = io.StringIO()
    write_verilog(netlist, verilog, module="secded_corrector")
    aiger = io.StringIO()
    write_aag(optimized, aiger)
    print(
        f"exports: {len(verilog.getvalue().splitlines())} lines of Verilog, "
        f"{len(aiger.getvalue().splitlines())} lines of AIGER"
    )
    print("\nfirst Verilog lines:")
    for line in verilog.getvalue().splitlines()[:6]:
        print("  " + line)


if __name__ == "__main__":
    main()
