"""Structural cone fingerprints."""

from repro.aig import AIG, aig_fingerprint, cone_fingerprint, lit_not


def _xor_circuit():
    aig = AIG()
    a, b = aig.add_pi("a"), aig.add_pi("b")
    aig.add_po(aig.xor_(a, b), "y")
    return aig


class TestConeFingerprint:
    def test_deterministic_and_structure_sensitive(self):
        aig = _xor_circuit()
        fp = cone_fingerprint(aig, [aig.pos[0]])
        assert fp == cone_fingerprint(aig, [aig.pos[0]])

        other = AIG()
        a, b = other.add_pi("a"), other.add_pi("b")
        other.add_po(other.and_(a, b), "y")
        assert fp != cone_fingerprint(other, [other.pos[0]])

    def test_survives_extract_renumbering(self):
        aig = AIG()
        a, b, c = (aig.add_pi() for _ in range(3))
        dead = aig.and_(a, c)  # dangling node shifts variable ids
        y = aig.or_(aig.and_(a, b), c)
        aig.add_po(y)
        assert dead  # keep the dangling node alive in the builder
        fp = cone_fingerprint(aig, [aig.pos[0]])
        extracted = aig.extract()
        assert cone_fingerprint(extracted, [extracted.pos[0]]) == fp

    def test_sensitive_to_output_polarity(self):
        aig = _xor_circuit()
        po = aig.pos[0]
        assert cone_fingerprint(aig, [po]) != cone_fingerprint(
            aig, [lit_not(po)]
        )

    def test_sensitive_to_pi_identity(self):
        aig = AIG()
        a, b, c = (aig.add_pi() for _ in range(3))
        aig.add_po(aig.and_(a, b))
        aig.add_po(aig.and_(a, c))
        assert cone_fingerprint(aig, [aig.pos[0]]) != cone_fingerprint(
            aig, [aig.pos[1]]
        )

    def test_po_order_matters_for_whole_aig(self):
        aig = AIG()
        a, b = aig.add_pi(), aig.add_pi()
        aig.add_po(aig.and_(a, b))
        aig.add_po(aig.or_(a, b))
        swapped = AIG()
        a2, b2 = swapped.add_pi(), swapped.add_pi()
        swapped.add_po(swapped.or_(a2, b2))
        swapped.add_po(swapped.and_(a2, b2))
        assert aig_fingerprint(aig) != aig_fingerprint(swapped)

    def test_shared_logic_cones_equal_across_circuits(self):
        # The same function over the same PI positions fingerprints
        # equally even when built inside different circuits.
        one = _xor_circuit()
        two = AIG()
        a, b = two.add_pi("p"), two.add_pi("q")
        two.add_po(two.xor_(a, b), "z")
        assert cone_fingerprint(one, [one.pos[0]]) == cone_fingerprint(
            two, [two.pos[0]]
        )
