"""Per-candidate features for the lookahead ranker.

One :class:`RoundFeatureExtractor` is built per decomposition round and
computes the static feature block of every candidate output lazily, in
the parent process only — workers never see features, which is what
makes the logged dataset identical between serial and parallel runs.

Everything here is cheap relative to one SPCF/reconstruction pipeline:
cone membership is one DFS, and the signature arrival-bound gap reuses
the repo's bit-parallel floating-mode timed simulation at a narrow
fixed width (:data:`RANK_SIM_WIDTH`), run at most once per round.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from ..aig import AIG, cone_pis, fanin_cone_vars, lit_var, random_patterns
from .dataset import FEATURE_NAMES

RANK_SIM_WIDTH = 64
"""Patterns in the ranker's timed simulation — a guide metric only, so
it stays far narrower than the optimizer's ``sim_width``."""


class RoundFeatureExtractor:
    """Lazy per-round feature computation (layout :data:`FEATURE_NAMES`)."""

    def __init__(
        self,
        aig: AIG,
        aig_levels: Sequence,
        pi_arrivals: Optional[List[int]],
        seed: int,
    ):
        self.aig = aig
        self.aig_levels = aig_levels
        self.pi_arrivals = pi_arrivals
        self.seed = seed
        self.depth = max(
            (aig_levels[lit_var(po)] for po in aig.pos), default=0
        )
        self._sim_arrivals = None
        self._static: Dict[int, Tuple[float, ...]] = {}

    def _arrival_bounds(self):
        """Max simulated floating-mode arrival per variable (lazy)."""
        if self._sim_arrivals is None:
            # Deferred so importing repro.rank never circularly touches
            # repro.core mid-initialization.
            from ..core.signatures import (
                timed_value_simulation,
                unpack_patterns,
            )

            pi_words = random_patterns(
                self.aig.num_pis, RANK_SIM_WIDTH, self.seed
            )
            _values, arrivals = timed_value_simulation(
                self.aig,
                unpack_patterns(pi_words, RANK_SIM_WIDTH),
                pi_arrivals=self.pi_arrivals,
            )
            self._sim_arrivals = arrivals
        return self._sim_arrivals

    def _static_block(self, po_index: int) -> Tuple[float, ...]:
        cached = self._static.get(po_index)
        if cached is not None:
            return cached
        po_lit = self.aig.pos[po_index]
        var = lit_var(po_lit)
        cone = fanin_cone_vars(self.aig, [po_lit])
        cone_ands = sum(1 for v in cone if self.aig.is_and(v))
        support = len(cone_pis(self.aig, [po_lit]))
        po_arrival = float(self.aig_levels[var])
        slack = float(self.depth) - po_arrival
        bound = self._arrival_bounds()[var]
        sim_max = float(bound.max()) if getattr(bound, "size", 0) else 0.0
        sig_gap = po_arrival - sim_max
        block = (
            float(cone_ands), float(support), po_arrival, slack, sig_gap
        )
        self._static[po_index] = block
        return block

    def features(
        self, po_index: int, reject_streak: int, walk_mode: str
    ) -> List[float]:
        """Feature vector for one candidate, ordered as FEATURE_NAMES."""
        block = self._static_block(po_index)
        return list(block) + [
            1.0 if walk_mode == "full" else 0.0,
            float(reject_streak),
        ]


assert len(FEATURE_NAMES) == 7  # keep layout and extractor in lockstep
