"""Cut-based local resynthesis (ABC's ``rewrite`` / ``refactor``).

For every node, K-feasible cuts are enumerated; the cut function is
resynthesized from its minimum SOPs (flat and factored, both phases) and
the replacement is kept when it improves the (level, structural cost)
objective.  ``rewrite`` uses small cuts (k=4), ``refactor`` large ones
(k=8), mirroring the granularity split of the ABC commands.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..aig import (
    AIG,
    CONST0,
    cut_tt,
    enumerate_cuts,
    lit_neg,
    lit_notif,
    lit_var,
)
from ..netlist import ArrivalAwareBuilder, synthesize_node


def _local_resynthesis(
    aig: AIG, k: int, max_cuts: int, objective: str = "area"
) -> AIG:
    cuts = enumerate_cuts(aig, k, max_cuts)
    dest = AIG()
    builder = ArrivalAwareBuilder(dest)
    mapping: Dict[int, int] = {0: CONST0}
    for var, name in zip(aig.pis, aig.pi_names):
        mapping[var] = dest.add_pi(name)

    def mapped(lit: int) -> int:
        return lit_notif(mapping[lit_var(lit)], lit_neg(lit))

    for var in aig.and_vars():
        f0, f1 = aig.fanins(var)
        default = builder.and_(mapped(f0), mapped(f1))
        best = default

        def key_of(lit: int, added: int):
            level = builder.level(lit)
            if objective == "delay":
                return (level, added)
            return (added, level)

        best_key = key_of(default, 0)
        for cut in cuts[var]:
            if cut == (var,) or not cut or len(cut) < 3:
                continue
            tt = cut_tt(aig, var, list(cut))
            tt_small, support = tt.shrink()
            leaf_lits = [mapped(cut[i] * 2) for i in support]
            before = dest.num_vars
            candidate = synthesize_node(builder, tt_small, leaf_lits)
            added = dest.num_vars - before
            key = key_of(candidate, added)
            if key < best_key:
                best_key = key
                best = candidate
        mapping[var] = best

    for po, name in zip(aig.pos, aig.po_names):
        dest.add_po(mapped(po), name)
    return dest.extract()


def rewrite(aig: AIG, objective: str = "area") -> AIG:
    """Fine-grained cut rewriting (4-feasible cuts).

    ABC's ``rewrite`` is area-oriented (the default); the delay objective
    is used by the high-effort commercial-flow stand-in.
    """
    return _local_resynthesis(aig, k=4, max_cuts=6, objective=objective)


def refactor(aig: AIG, objective: str = "area") -> AIG:
    """Coarse-grained cone refactoring (8-feasible cuts)."""
    return _local_resynthesis(aig, k=8, max_cuts=4, objective=objective)
