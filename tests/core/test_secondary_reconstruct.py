"""Tests for secondary simplification and Shannon reconstruction."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.aig import AIG, depth, levels, lit_not, lit_var, po_tts
from repro.cec import lits_equivalent
from repro.core import (
    ExactCareChecker,
    ExactModel,
    SatCareChecker,
    SignatureModel,
    Spcf,
    TEMPLATES,
    applicable_rules,
    build_ite,
    primary_reduce,
    reconstruct,
    secondary_simplify,
    spcf_exact_tt,
)
from repro.aig import random_patterns
from repro.netlist import ArrivalAwareBuilder, renode
from repro.tt import TruthTable

from ..aig.test_aig import random_aig


def _primary(seed, n_pis=5, n_nodes=25):
    aig = random_aig(seed, n_pis=n_pis, n_nodes=n_nodes, n_pos=1)
    d = levels(aig)[lit_var(aig.pos[0])]
    if d == 0:
        return None
    spcf_tt = spcf_exact_tt(aig, 0, d)
    if spcf_tt.is_const0:
        return None
    net = renode(aig, k=4)
    pos_net = net.extract_po_cone(0)
    neg_net = net.extract_po_cone(0)
    model = ExactModel(pos_net)
    result = primary_reduce(pos_net, 0, model, model.spcf_fn(Spcf("tt", tt=spcf_tt)))
    if result.sigma_nid is None:
        return None
    model.recompute()
    sigma = model.fn(result.sigma_nid)
    return aig, pos_net, neg_net, model, result, sigma


class TestSecondaryExact:
    @given(st.integers(0, 80))
    @settings(deadline=None, max_examples=20)
    def test_y_neg_agrees_off_sigma(self, seed):
        setup = _primary(seed)
        if setup is None:
            return
        aig, _pos_net, neg_net, _model, result, sigma = setup
        original = neg_net.po_tts()[0]
        checker = ExactCareChecker(ExactModel(neg_net), ~sigma)
        secondary_simplify(neg_net, 0, checker)
        y_neg = neg_net.po_tts()[0]
        # Σ1 = 0 must imply y_neg == y.
        assert (~sigma & (y_neg ^ original)).is_const0

    @given(st.integers(0, 80))
    @settings(deadline=None, max_examples=10)
    def test_sat_checker_matches_exact_conclusion(self, seed):
        setup = _primary(seed, n_pis=4, n_nodes=18)
        if setup is None:
            return
        aig, pos_net, neg_net, model, result, sigma = setup
        original = neg_net.po_tts()[0]
        width = 64
        pi_words = random_patterns(len(neg_net.pis), width, seed)
        sig_model = SignatureModel(neg_net, pi_words, width)
        # Care signature from the exact sigma for alignment.
        care_sig = 0
        for p in range(width):
            m = sum((1 << i) for i, w in enumerate(pi_words) if (w >> p) & 1)
            if not sigma.value(m):
                care_sig |= 1 << p
        checker = SatCareChecker(
            sig_model, care_sig, pos_net, result.sigma_nid, neg_net
        )
        secondary_simplify(neg_net, 0, checker)
        y_neg = neg_net.po_tts()[0]
        assert (~sigma & (y_neg ^ original)).is_const0


class TestReconstruct:
    def _fresh(self, seed=0):
        import random

        rng = random.Random(seed)
        aig = AIG()
        xs = [aig.add_pi() for _ in range(4)]
        builder = ArrivalAwareBuilder(aig)
        mk = lambda: rng.choice(xs) ^ rng.randint(0, 1)
        s = aig.and_(mk(), mk())
        a = aig.or_(mk(), mk())
        b = aig.xor_(mk(), mk())
        return aig, builder, s, a, b

    @given(st.integers(0, 100))
    @settings(deadline=None, max_examples=30)
    def test_reconstruct_equals_ite(self, seed):
        aig, builder, s, a, b = self._fresh(seed)
        base = build_ite(builder, s, a, b)
        best = reconstruct(builder, s, a, b)
        assert lits_equivalent(aig, best, base)
        assert builder.level(best) <= builder.level(base)

    def test_rules_disabled_returns_ite(self):
        aig, builder, s, a, b = self._fresh(1)
        out = reconstruct(builder, s, a, b, use_rules=False)
        assert lits_equivalent(aig, out, build_ite(builder, s, a, b))

    def test_carry_bypass_rule_applies(self):
        # Carry-bypass shape: y0 = 1, so ITE(s, 1, b) must collapse to s|b.
        aig = AIG()
        s = aig.add_pi()
        b = aig.add_pi()
        builder = ArrivalAwareBuilder(aig)
        out = reconstruct(builder, s, lit_not(0), b)
        assert builder.level(out) <= 1
        assert lits_equivalent(aig, out, aig.or_(s, b))

    def test_applicable_rules_for_implied_branches(self):
        # b => a: the forms "s&a|b" and "a|b"... at least s&a|b must apply.
        def factory():
            aig = AIG()
            s = aig.add_pi()
            x, y = aig.add_pi(), aig.add_pi()
            b = aig.and_(x, y)
            a = aig.or_(x, aig.and_(y, s) ^ 0)  # b => x => a
            return aig, s, a, b

        names = applicable_rules(factory)
        assert "s&a|b" in names

    def test_template_count_matches_paper_scale(self):
        # The paper speaks of 28 implication-based rules; our systematic
        # template set (20 forms x output handled by AIG polarity) covers
        # that rule space.
        assert len(TEMPLATES) == 20
