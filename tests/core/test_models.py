"""Consistency tests between the three global-function models."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.aig import random_patterns
from repro.core import ExactModel, SignatureModel
from repro.core.model import BddModel
from repro.netlist import renode
from repro.sop import Cube
from repro.tt import TruthTable

from ..aig.test_aig import random_aig


def _setup(seed, n_pis=5):
    aig = random_aig(seed, n_pis=n_pis, n_nodes=25, n_pos=2)
    net = renode(aig, k=4)
    return aig, net


class TestExactVsSignature:
    @given(st.integers(0, 40))
    @settings(deadline=None, max_examples=12)
    def test_signature_is_sampled_exact(self, seed):
        aig, net = _setup(seed)
        exact = ExactModel(net)
        width = 64
        pi_words = random_patterns(len(net.pis), width, seed)
        sig = SignatureModel(net, pi_words, width)
        for nid in net.topo_order():
            tt = exact.fn(nid)
            word = sig.fn(nid)
            for p in range(width):
                m = sum(
                    (1 << i)
                    for i, w in enumerate(pi_words)
                    if (w >> p) & 1
                )
                assert bool((word >> p) & 1) == tt.value(m)

    @given(st.integers(0, 40))
    @settings(deadline=None, max_examples=8)
    def test_cube_weights_agree_in_the_limit(self, seed):
        # With exhaustive "patterns" the signature weight equals the
        # exact weight.
        aig, net = _setup(seed, n_pis=4)
        exact = ExactModel(net)
        width = 16
        pi_words = [TruthTable.var(i, 4).bits for i in range(4)]
        sig = SignatureModel(net, pi_words, width)
        spcf_tt = TruthTable.var(0, 4) | TruthTable.var(1, 4)
        spcf_sig = spcf_tt.bits
        for nid in list(net.topo_order())[:6]:
            node = net.nodes[nid]
            if not node.fanins:
                continue
            cube = Cube.from_literals([(0, True)], len(node.fanins))
            w_exact = exact.cube_weight(spcf_tt, nid, cube)
            w_sig = sig.cube_weight(spcf_sig, nid, cube)
            assert abs(w_exact - w_sig) < 1e-9


class TestExactVsBdd:
    @given(st.integers(0, 40))
    @settings(deadline=None, max_examples=8)
    def test_weights_identical(self, seed):
        aig, net = _setup(seed, n_pis=5)
        exact = ExactModel(net)
        bm = BddModel(net)
        from repro.bdd import BDD

        spcf_tt = TruthTable.var(2, 5) & ~TruthTable.var(0, 5)
        # Build the same SPCF in the model's manager.
        ref = bm.bdd.and_(bm.bdd.var(2), bm.bdd.ite(bm.bdd.var(0), 1, 0))
        for nid in list(net.topo_order())[:6]:
            node = net.nodes[nid]
            if not node.fanins:
                continue
            cube = Cube.from_literals(
                [(len(node.fanins) - 1, False)], len(node.fanins)
            )
            w_exact = exact.cube_weight(spcf_tt, nid, cube)
            w_bdd = bm.cube_weight(ref, nid, cube)
            assert abs(w_exact - w_bdd) < 1e-9

    def test_domain_mismatch_rejected(self):
        import pytest

        from repro.core import Spcf

        aig, net = _setup(0)
        exact = ExactModel(net)
        with pytest.raises(ValueError):
            exact.spcf_fn(Spcf("sim", signature=3))
