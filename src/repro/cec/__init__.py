"""Combinational equivalence checking."""

from .equiv import (
    EquivalenceResult,
    assert_equivalent,
    check_equivalence,
    lits_equivalent,
)

__all__ = [
    "EquivalenceResult",
    "assert_equivalent",
    "check_equivalence",
    "lits_equivalent",
]
