"""End-to-end tests for the lookahead optimizer and area recovery."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.adders import optimal_cla_levels, ripple_carry_adder
from repro.aig import AIG, depth, po_tts
from repro.cec import check_equivalence
from repro.core import (
    LookaheadOptimizer,
    optimize_lookahead,
    remove_redundant_edges,
    sat_sweep,
)

from ..aig.test_aig import random_aig


class TestSatSweep:
    @given(st.integers(0, 40))
    @settings(deadline=None, max_examples=15)
    def test_preserves_function(self, seed):
        aig = random_aig(seed, n_pis=5, n_nodes=40, n_pos=3)
        swept = sat_sweep(aig, sim_width=64, seed=seed)
        assert check_equivalence(aig, swept)

    @given(st.integers(0, 40))
    @settings(deadline=None, max_examples=15)
    def test_never_increases_size_or_depth(self, seed):
        aig = random_aig(seed, n_pis=5, n_nodes=40, n_pos=3)
        swept = sat_sweep(aig, sim_width=64, seed=seed)
        assert swept.num_ands() <= aig.extract().num_ands()
        assert depth(swept) <= depth(aig)

    def test_merges_duplicated_logic(self):
        aig = AIG()
        a, b, c = (aig.add_pi() for _ in range(3))
        # Same function built two structurally different ways.
        f = aig.or_(aig.and_(a, b), aig.and_(a, c))
        g = aig.and_(a, aig.or_(b, c))
        aig.add_po(aig.xor_(f, g))  # constant 0 after sweeping
        swept = sat_sweep(aig)
        assert swept.num_ands() == 0
        assert po_tts(swept)[0].is_const0


class TestRedundancyRemoval:
    def test_removes_redundant_conjunct(self):
        aig = AIG()
        a, b = aig.add_pi(), aig.add_pi()
        # (a & b) & (a | b) == a & b: the (a|b) edge is redundant.
        redundant = aig.and_(aig.and_(a, b), aig.or_(a, b))
        aig.add_po(redundant)
        cleaned = remove_redundant_edges(aig)
        assert check_equivalence(aig, cleaned)
        assert cleaned.num_ands() < aig.extract().num_ands()


class TestLookaheadOptimizer:
    @given(st.integers(0, 50))
    @settings(deadline=None, max_examples=10)
    def test_random_circuits_equivalence(self, seed):
        aig = random_aig(seed, n_pis=6, n_nodes=40, n_pos=3)
        out = LookaheadOptimizer(max_rounds=2).optimize(aig)
        assert check_equivalence(aig, out)
        assert depth(out) <= depth(aig)

    def test_two_bit_adder_reaches_optimum(self):
        aig = ripple_carry_adder(2)
        out = LookaheadOptimizer(max_rounds=10, verify=True).optimize(aig)
        assert check_equivalence(aig, out)
        assert depth(out) == optimal_cla_levels(2)

    def test_four_bit_adder_substantial_gain(self):
        aig = ripple_carry_adder(4)
        out = LookaheadOptimizer(max_rounds=12, verify=True).optimize(aig)
        assert check_equivalence(aig, out)
        assert depth(out) <= 8  # 10 -> 8 observed; paper reaches 6-7

    def test_sim_mode_on_small_adder(self):
        aig = ripple_carry_adder(3)
        out = LookaheadOptimizer(
            max_rounds=6, mode="sim", sim_width=256
        ).optimize(aig)
        assert check_equivalence(aig, out)
        assert depth(out) <= depth(aig)

    def test_overapprox_spcf_mode(self):
        aig = ripple_carry_adder(3)
        out = LookaheadOptimizer(
            max_rounds=6, spcf_kind="overapprox"
        ).optimize(aig)
        assert check_equivalence(aig, out)

    def test_rules_ablation_still_correct(self):
        aig = ripple_carry_adder(3)
        out = LookaheadOptimizer(max_rounds=6, use_rules=False).optimize(aig)
        assert check_equivalence(aig, out)

    def test_convenience_wrapper(self):
        aig = ripple_carry_adder(2)
        out = optimize_lookahead(aig, max_rounds=4)
        assert check_equivalence(aig, out)

    def test_trivial_circuit_untouched(self):
        aig = AIG()
        a = aig.add_pi()
        aig.add_po(a)
        out = LookaheadOptimizer().optimize(aig)
        assert check_equivalence(aig, out)
