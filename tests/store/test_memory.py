"""The bounded in-memory LRU backend."""

from __future__ import annotations

from repro import perf
from repro.store import MISSING, MemoryStore


def test_roundtrip_and_missing():
    store = MemoryStore()
    assert store.get("spcf", (1, "a")) is MISSING
    store.put("spcf", (1, "a"), ("tt", 5, 2))
    assert store.get("spcf", (1, "a")) == ("tt", 5, 2)
    # Namespaces are isolated even for identical keys.
    assert store.get("tts", (1, "a")) is MISSING


def test_values_held_by_reference():
    # The DP memo pool mutates its dicts in place and relies on identity.
    store = MemoryStore()
    memo = {(0, 0): 1}
    store.put("dp", (7,), memo)
    assert store.get("dp", (7,)) is memo


def test_eviction_is_lru_not_fifo():
    store = MemoryStore(default_limit=2)
    store.put("ns", (1,), "a")
    store.put("ns", (2,), "b")
    store.get("ns", (1,))  # refresh (1,): now (2,) is the LRU entry
    store.put("ns", (3,), "c")
    assert store.get("ns", (1,)) == "a"
    assert store.get("ns", (2,)) is MISSING
    assert store.get("ns", (3,)) == "c"


def test_overwrite_never_evicts():
    # The historical ConeCache bug: eviction ran before the key check,
    # so refreshing an entry in a full table dropped an unrelated one.
    store = MemoryStore(default_limit=2)
    store.put("ns", (1,), "a")
    store.put("ns", (2,), "b")
    evicted = perf.counter("store.evict")
    store.put("ns", (2,), "b2")  # overwrite in a full table
    assert perf.counter("store.evict") == evicted
    assert store.get("ns", (1,)) == "a"
    assert store.get("ns", (2,)) == "b2"
    assert store.entries("ns") == 2


def test_per_namespace_limits():
    store = MemoryStore(default_limit=8, limits={"tiny": 1})
    store.put("tiny", (1,), "a")
    store.put("tiny", (2,), "b")
    assert store.entries("tiny") == 1
    assert store.get("tiny", (2,)) == "b"
    for i in range(8):
        store.put("big", (i,), i)
    assert store.entries("big") == 8


def test_invalidate_by_fingerprint():
    store = MemoryStore()
    store.put("ns", (100, "x"), 1)
    store.put("ns", (100, "y"), 2)
    store.put("ns", (200, "x"), 3)
    assert store.invalidate("ns", fingerprint=100) == 2
    assert store.get("ns", (100, "x")) is MISSING
    assert store.get("ns", (200, "x")) == 3


def test_invalidate_all_and_per_namespace():
    store = MemoryStore()
    store.put("a", (1,), 1)
    store.put("a", (2,), 2)
    store.put("b", (1,), 3)
    assert store.invalidate("a") == 2
    assert store.entries("a") == 0
    assert store.entries("b") == 1
    assert store.invalidate() == 1
    assert store.entries("b") == 0


def test_stats_shape():
    store = MemoryStore(default_limit=4, limits={"spcf": 2})
    store.put("spcf", (1,), "a")
    stats = store.stats()
    assert stats == {"spcf": {"entries": 1, "limit": 2}}


def test_namespace_view_counters():
    store = MemoryStore()
    ns = store.namespace("viewtest")
    h0 = perf.counter("store.viewtest.hit")
    m0 = perf.counter("store.viewtest.miss")
    assert ns.get((1,)) is None
    ns.put((1,), 42)
    assert ns.get((1,)) == 42
    assert ns.contains((1,))
    assert perf.counter("store.viewtest.hit") == h0 + 2
    assert perf.counter("store.viewtest.miss") == m0 + 1


def test_namespace_codec_hooks():
    store = MemoryStore()
    ns = store.namespace(
        "codec",
        encode=lambda pair: [pair[0] + 1, pair[1] + 1],
        decode=lambda raw: (raw[0] - 1, raw[1] - 1),
    )
    ns.put((9,), (3, 4))
    # The store holds the encoded form; the view decodes on hit.
    assert store.get("codec", (9,)) == [4, 5]
    assert ns.get((9,)) == (3, 4)
