"""Shared infrastructure for the reproduction benches.

Flow results are cached per (circuit, flow) so the gates/levels/delay/power
metrics of one Table 2 row are computed from a single optimization run, and
the printed tables aggregate across parametrized benchmark items.
"""

from __future__ import annotations

import os
from typing import Callable, Dict, Tuple

import pytest

from repro.aig import AIG, depth
from repro.cec import check_equivalence
from repro.core import LookaheadOptimizer, lookahead_flow
from repro.mapping import dynamic_power_uw, map_aig, mapped_delay
from repro.opt import abc_resyn2rs, dc_map_effort_high, sis_best


def lookahead_effort_scaled(aig: AIG) -> AIG:
    """The Lookahead column with effort scaled to circuit size.

    Small circuits get the full flow; large ones get bounded rounds and a
    single conventional/decomposition alternation so the 15-circuit table
    regenerates in about an hour of CPU.  The flow is never worse than the
    DC baseline regardless of the effort setting.
    """
    ands = aig.num_ands()
    if ands <= 800:
        return lookahead_flow(aig)
    if ands <= 2200:
        opt = LookaheadOptimizer(
            max_rounds=4, max_outputs_per_round=6, sim_width=512,
            walk_modes=("target",),
        )
        return lookahead_flow(aig, opt, max_iterations=2)
    opt = LookaheadOptimizer(
        max_rounds=3, max_outputs_per_round=4, sim_width=512,
        walk_modes=("target",),
    )
    return lookahead_flow(aig, opt, max_iterations=1)


FLOWS: Dict[str, Callable[[AIG], AIG]] = {
    "SIS": sis_best,
    "ABC": abc_resyn2rs,
    "DC": dc_map_effort_high,
    "Lookahead": lookahead_effort_scaled,
}

_flow_cache: Dict[Tuple[str, str], dict] = {}


def run_flow(circuit_name: str, flow_name: str, aig: AIG) -> dict:
    """Optimize, equivalence-check, map, and measure one table cell."""
    key = (circuit_name, flow_name)
    if key in _flow_cache:
        return _flow_cache[key]
    optimized = FLOWS[flow_name](aig)
    if not check_equivalence(aig, optimized):
        raise AssertionError(
            f"{flow_name} broke {circuit_name}: not equivalent"
        )
    netlist = map_aig(optimized)
    row = {
        "gates": optimized.num_ands(),
        "levels": depth(optimized),
        "delay_ps": mapped_delay(netlist),
        "power_uw": dynamic_power_uw(netlist),
    }
    _flow_cache[key] = row
    return row


def quick_mode() -> bool:
    """REPRO_BENCH_QUICK=1 restricts Table 2 to the small circuits."""
    return os.environ.get("REPRO_BENCH_QUICK", "") == "1"
