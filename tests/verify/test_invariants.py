"""Invariants hold on known-good circuits and catch planted miscompiles."""

from __future__ import annotations

import pytest

from repro.adders import ripple_carry_adder
from repro.cec import check_equivalence
from repro.core import LookaheadOptimizer, lookahead_flow
from repro.verify import Case, INVARIANTS, run_invariant


@pytest.fixture(scope="module")
def adder_case():
    return Case(
        aig=ripple_carry_adder(4),
        config={"max_rounds": 2, "mode": "tt", "seed": 0},
        arrival_times=None,
    )


@pytest.mark.parametrize("name", sorted(INVARIANTS))
def test_invariant_clean_on_adder(name, adder_case):
    assert run_invariant(name, adder_case) is None


def test_run_invariant_reports_crashes(adder_case):
    def crashes(case):
        raise RuntimeError("boom")

    INVARIANTS["crashes"] = crashes
    try:
        detail = run_invariant("crashes", adder_case)
    finally:
        del INVARIANTS["crashes"]
    assert detail == "RuntimeError: boom"


class TestFlowVerifyGuard:
    def test_verify_accepts_correct_flow(self):
        aig = ripple_carry_adder(4)
        out = lookahead_flow(
            aig, LookaheadOptimizer(max_rounds=2), max_iterations=2,
            verify=True,
        )
        assert check_equivalence(aig, out)

    def test_verify_catches_planted_miscompile(self, monkeypatch):
        # Sabotage the optimizer to return a wrong circuit that *wins* the
        # quality gate (all outputs constant — depth 0, zero gates): the
        # opt-in guard must refuse to let it through.
        aig = ripple_carry_adder(4)

        def sabotage(self, circuit):
            wrong = circuit.__class__()
            for name in circuit.pi_names:
                wrong.add_pi(name)
            for name in circuit.po_names:
                wrong.add_po(0, name)
            return wrong

        monkeypatch.setattr(LookaheadOptimizer, "optimize", sabotage)
        with pytest.raises(AssertionError, match="NOT equivalent"):
            lookahead_flow(aig, max_iterations=2, verify=True)


class TestSpcfTiersAgree:
    def test_clean_on_random_circuit(self):
        import random

        from repro.verify.random_circuits import random_aig

        rng = random.Random(3)
        case = Case(aig=random_aig(rng), config={"max_rounds": 2})
        assert run_invariant("spcf_tiers_agree", case) is None

    def test_catches_degraded_tier_miscompile(self, monkeypatch):
        # Sabotage only the signature tier: the invariant must notice the
        # degraded kernel produced a non-equivalent circuit.
        real = LookaheadOptimizer.optimize

        def sabotage(self, circuit):
            if self.spcf_tier != "signature":
                return real(self, circuit)
            wrong = circuit.__class__()
            for name in circuit.pi_names:
                wrong.add_pi(name)
            for name in circuit.po_names:
                wrong.add_po(0, name)
            return wrong

        monkeypatch.setattr(LookaheadOptimizer, "optimize", sabotage)
        case = Case(aig=ripple_carry_adder(3), config={"max_rounds": 1})
        detail = run_invariant("spcf_tiers_agree", case)
        assert detail is not None and "signature" in detail
