"""Levels, depth, and critical-path extraction on AIGs.

The paper's primary quality metric is the number of AIG logic levels; the
critical machinery here (arrival/required times, critical node and PI sets)
also feeds SPCF computation.

This module is a thin facade over :class:`repro.timing.AigTimingEngine`
with the unit delay model, preserving the original all-integer API.
Callers that need non-uniform arrivals, other delay models, or incremental
re-analysis should hold an engine directly.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

from .aig import AIG

INF = float("inf")


def _engine(aig: AIG):
    from ..timing import AigTimingEngine

    return AigTimingEngine(aig)


def levels(aig: AIG) -> List[int]:
    """Arrival level of every variable (PIs and constant at level 0)."""
    return list(_engine(aig).arrivals())


def depth(aig: AIG) -> int:
    """Number of logic levels of the AIG (max over POs)."""
    return _engine(aig).depth()


def po_levels(aig: AIG) -> List[int]:
    """Arrival level of each primary output."""
    return _engine(aig).po_arrivals()


def required_times(
    aig: AIG, target_depth: Optional[int] = None
) -> List[float]:
    """Required level of every variable against ``target_depth``.

    Defaults to the AIG's own depth, so slack 0 marks critical nodes.
    """
    return _engine(aig).required_times(target_depth)


def critical_vars(aig: AIG) -> Set[int]:
    """Variables with zero slack (on some topologically longest path)."""
    return _engine(aig).critical_vars()


def critical_pis(aig: AIG) -> Set[int]:
    """PI variables lying on a critical path."""
    return _engine(aig).critical_pis()


def critical_pos(aig: AIG) -> List[int]:
    """PO indices whose cone contains a critical path."""
    return _engine(aig).critical_pos()


def a_critical_path(aig: AIG) -> List[int]:
    """One longest path as a list of variables from a PI to a PO."""
    return _engine(aig).critical_path()


def slack_histogram(aig: AIG) -> Dict[int, int]:
    """Count of AND nodes per integer slack value (diagnostics)."""
    return _engine(aig).slack_histogram()
