"""Sharded Table 2 orchestrator: manifest, shards, resume, merge, report.

Everything here runs on a tiny synthetic registry (2-bit ripple adders)
so the suite exercises the orchestration machinery, not the optimizer.
"""

from __future__ import annotations

import json
import os

import pytest

from repro.adders import ripple_carry_adder
from repro.bench import orchestrator
from repro.bench.orchestrator import (
    OrchestratorError,
    job_artifact_path,
    load_artifact,
    load_manifest,
    merge_results,
    parse_shard,
    plan_manifest,
    render_report,
    run_shard,
    shard_jobs,
    update_experiments,
    write_manifest,
    write_merged,
)

REGISTRY = {
    "tiny2": lambda: ripple_carry_adder(2),
    "tiny3": lambda: ripple_carry_adder(3),
}

FLOWS = ["DC", "Lookahead"]


def tiny_manifest():
    return plan_manifest(flows=FLOWS, registry=REGISTRY)


class TestManifest:
    def test_plan_is_deterministic(self):
        a, b = tiny_manifest(), tiny_manifest()
        assert a == b
        assert a["fingerprint"] == b["fingerprint"]

    def test_full_plan_covers_table2(self):
        manifest = plan_manifest()
        from repro.bench import BENCHMARKS

        assert set(manifest["circuits"]) == set(BENCHMARKS)
        assert len(manifest["jobs"]) == len(BENCHMARKS) * 4
        # Effort options are recorded per circuit: the big fabrics get
        # bounded rounds, the small circuits the full flow.
        assert manifest["circuits"]["C432"]["lookahead_options"] == {}
        assert manifest["circuits"]["i10"]["lookahead_options"][
            "max_iterations"] == 1

    def test_fingerprint_tracks_config(self):
        base = tiny_manifest()
        fewer = plan_manifest(flows=["DC"], registry=REGISTRY)
        assert base["fingerprint"] != fewer["fingerprint"]
        subset = plan_manifest(
            circuits=["tiny2"], flows=FLOWS, registry=REGISTRY
        )
        assert base["fingerprint"] != subset["fingerprint"]

    def test_unknown_circuit_and_flow_rejected(self):
        with pytest.raises(OrchestratorError):
            plan_manifest(circuits=["nope"], registry=REGISTRY)
        with pytest.raises(OrchestratorError):
            plan_manifest(flows=["NotAFlow"], registry=REGISTRY)

    def test_roundtrip_and_tamper_detection(self, tmp_path):
        manifest = tiny_manifest()
        path = str(tmp_path / "m.json")
        write_manifest(manifest, path)
        assert load_manifest(path) == manifest
        tampered = dict(manifest)
        tampered["flows"] = ["DC"]
        with open(path, "w") as fh:
            json.dump(tampered, fh)
        with pytest.raises(OrchestratorError):
            load_manifest(path)


class TestSharding:
    def test_parse_shard(self):
        assert parse_shard("1/1") == (1, 1)
        assert parse_shard("2/3") == (2, 3)
        for bad in ("0/2", "3/2", "1", "a/b", "1/0", "-1/2"):
            with pytest.raises(OrchestratorError):
                parse_shard(bad)

    def test_shards_partition_jobs(self):
        jobs = tiny_manifest()["jobs"]
        for n in (1, 2, 3, len(jobs), len(jobs) + 3):
            pieces = [shard_jobs(jobs, k, n) for k in range(1, n + 1)]
            flat = [job for piece in pieces for job in piece]
            assert sorted(j["id"] for j in flat) == sorted(
                j["id"] for j in jobs
            )
            sizes = [len(p) for p in pieces]
            assert max(sizes) - min(sizes) <= 1  # round-robin balance


class TestRunAndResume:
    def test_run_writes_artifacts_and_resumes(self, tmp_path):
        manifest = tiny_manifest()
        jobs_dir = str(tmp_path / "jobs")
        summary = run_shard(manifest, jobs_dir, registry=REGISTRY)
        assert summary == {
            "run": len(manifest["jobs"]), "skipped": 0, "stale": 0
        }
        for job in manifest["jobs"]:
            artifact = load_artifact(job_artifact_path(jobs_dir, job["id"]))
            assert artifact["fingerprint"] == manifest["fingerprint"]
            assert set(artifact["row"]) == {
                "gates", "levels", "delay_ps", "power_uw"
            }
        # Rerunning is a no-op: every artifact is current.
        again = run_shard(manifest, jobs_dir, registry=REGISTRY)
        assert again == {
            "run": 0, "skipped": len(manifest["jobs"]), "stale": 0
        }

    def test_killed_shard_resumes_where_it_died(self, tmp_path):
        """A shard killed mid-run redoes only the unfinished jobs, and
        the resumed result merges identically to an uninterrupted run."""
        manifest = tiny_manifest()
        total = len(manifest["jobs"])
        interrupted = str(tmp_path / "interrupted")
        reference = str(tmp_path / "reference")
        # "Kill" after two jobs: max_jobs stops exactly like a SIGKILL
        # between artifact writes would (artifacts are atomic).
        first = run_shard(
            manifest, interrupted, registry=REGISTRY, max_jobs=2
        )
        assert first["run"] == 2
        resumed = run_shard(manifest, interrupted, registry=REGISTRY)
        assert resumed == {"run": total - 2, "skipped": 2, "stale": 0}
        run_shard(manifest, reference, registry=REGISTRY)
        merged_a = merge_results(manifest, interrupted)
        merged_b = merge_results(manifest, reference)
        assert merged_a == merged_b

    def test_torn_artifact_is_redone(self, tmp_path):
        manifest = tiny_manifest()
        jobs_dir = str(tmp_path / "jobs")
        os.makedirs(jobs_dir)
        job = manifest["jobs"][0]
        with open(job_artifact_path(jobs_dir, job["id"]), "w") as fh:
            fh.write('{"fingerprint": "tru')  # torn mid-write
        summary = run_shard(manifest, jobs_dir, registry=REGISTRY)
        assert summary["skipped"] == 0
        assert summary["run"] == len(manifest["jobs"])

    def test_stale_fingerprint_artifacts_recomputed(self, tmp_path):
        manifest = tiny_manifest()
        jobs_dir = str(tmp_path / "jobs")
        run_shard(manifest, jobs_dir, registry=REGISTRY)
        # A different plan (fewer flows) stamps a different fingerprint.
        other = plan_manifest(flows=["DC"], registry=REGISTRY)
        assert other["fingerprint"] != manifest["fingerprint"]
        summary = run_shard(other, jobs_dir, registry=REGISTRY)
        assert summary["stale"] == len(other["jobs"])
        assert summary["run"] == len(other["jobs"])
        # The original manifest now sees those jobs as stale again.
        back = run_shard(manifest, jobs_dir, registry=REGISTRY)
        assert back["stale"] == len(other["jobs"])

    def test_registry_drift_rejected(self, tmp_path):
        manifest = tiny_manifest()
        drifted = dict(REGISTRY)
        drifted["tiny2"] = lambda: ripple_carry_adder(4)
        with pytest.raises(OrchestratorError, match="drifted"):
            run_shard(manifest, str(tmp_path / "jobs"), registry=drifted)

    def test_sharded_merge_equals_unsharded_byte_for_byte(self, tmp_path):
        manifest = tiny_manifest()
        sharded = str(tmp_path / "sharded")
        single = str(tmp_path / "single")
        for k in (1, 2):
            run_shard(manifest, sharded, shard=(k, 2), registry=REGISTRY)
        run_shard(manifest, single, registry=REGISTRY)
        merged_sharded = str(tmp_path / "sharded.json")
        merged_single = str(tmp_path / "single.json")
        write_merged(merge_results(manifest, sharded), merged_sharded)
        write_merged(merge_results(manifest, single), merged_single)
        with open(merged_sharded, "rb") as a, open(merged_single, "rb") as b:
            assert a.read() == b.read()


class TestMerge:
    def test_missing_jobs_abort_merge(self, tmp_path):
        manifest = tiny_manifest()
        jobs_dir = str(tmp_path / "jobs")
        run_shard(manifest, jobs_dir, shard=(1, 2), registry=REGISTRY)
        with pytest.raises(OrchestratorError, match="missing"):
            merge_results(manifest, jobs_dir)
        partial = merge_results(manifest, jobs_dir, allow_partial=True)
        done = sum(len(flows) for flows in partial["rows"].values())
        assert done == len(shard_jobs(manifest["jobs"], 1, 2))

    def test_stale_jobs_abort_merge(self, tmp_path):
        manifest = tiny_manifest()
        jobs_dir = str(tmp_path / "jobs")
        run_shard(manifest, jobs_dir, registry=REGISTRY)
        job = manifest["jobs"][0]
        path = job_artifact_path(jobs_dir, job["id"])
        artifact = load_artifact(path)
        artifact["fingerprint"] = "0" * 64
        with open(path, "w") as fh:
            json.dump(artifact, fh)
        with pytest.raises(OrchestratorError, match="stale"):
            merge_results(manifest, jobs_dir)

    def test_averages_match_hand_computation(self, tmp_path):
        manifest = tiny_manifest()
        jobs_dir = str(tmp_path / "jobs")
        run_shard(manifest, jobs_dir, registry=REGISTRY)
        merged = merge_results(manifest, jobs_dir)
        rows = merged["rows"]
        level_red = [
            1 - rows[n]["Lookahead"]["levels"] / rows[n]["DC"]["levels"]
            for n in manifest["circuits"]
        ]
        want = sum(level_red) / len(level_red)
        assert merged["averages"]["DC"]["levels_reduction"] == want
        assert "SIS" not in merged["averages"]  # flow not planned


class TestReport:
    def _merged(self, tmp_path):
        manifest = tiny_manifest()
        jobs_dir = str(tmp_path / "jobs")
        run_shard(manifest, jobs_dir, registry=REGISTRY)
        return merge_results(manifest, jobs_dir)

    def test_render_contains_rows_and_averages(self, tmp_path):
        text = render_report(self._merged(tmp_path))
        assert "| circuit |" in text
        assert "| tiny2 |" in text and "| tiny3 |" in text
        assert "vs DC" in text

    def test_update_experiments_splices_between_markers(self, tmp_path):
        merged = self._merged(tmp_path)
        doc = tmp_path / "EXPERIMENTS.md"
        doc.write_text(
            "# Doc\n\nintro\n\n"
            f"{orchestrator.TABLE2_BEGIN}\nstale\n{orchestrator.TABLE2_END}\n"
            "\nepilogue\n"
        )
        update_experiments(str(doc), merged)
        text = doc.read_text()
        assert "stale" not in text
        assert "| tiny2 |" in text
        assert text.startswith("# Doc")
        assert text.rstrip().endswith("epilogue")
        # Idempotent: a second splice leaves one copy.
        update_experiments(str(doc), merged)
        assert doc.read_text().count("| tiny2 |") == 1

    def test_update_experiments_requires_markers(self, tmp_path):
        merged = self._merged(tmp_path)
        doc = tmp_path / "EXPERIMENTS.md"
        doc.write_text("no markers here\n")
        with pytest.raises(OrchestratorError, match="markers"):
            update_experiments(str(doc), merged)
