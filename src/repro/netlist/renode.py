"""Clustering an AIG into a technology-independent network (ABC's renode).

A depth-oriented cut cover is selected: every AND node gets the K-feasible
cut minimizing its cluster arrival, and the cover is extracted from the POs
downward.  Each chosen cluster becomes one complex-function network node.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from ..aig import AIG, cut_tt, enumerate_cuts, lit_neg, lit_var
from ..tt import TruthTable
from .network import Network

DEFAULT_K = 6
DEFAULT_MAX_CUTS = 8


def renode(
    aig: AIG, k: int = DEFAULT_K, max_cuts: int = DEFAULT_MAX_CUTS
) -> Network:
    """Cluster ``aig`` into a network of complex nodes (<=k inputs each)."""
    cuts = enumerate_cuts(aig, k, max_cuts)
    # Depth-oriented best-cut selection.
    arrival: List[int] = [0] * aig.num_vars
    best_cut: List[Tuple[int, ...]] = [()] * aig.num_vars
    for var in aig.and_vars():
        best = None
        best_key = None
        for cut in cuts[var]:
            if cut == (var,) or not cut:
                continue
            arr = 1 + max(
                (arrival[leaf] for leaf in cut), default=0
            )
            key = (arr, len(cut))
            if best_key is None or key < best_key:
                best_key = key
                best = cut
        if best is None:
            raise AssertionError(f"no usable cut for AND var {var}")
        arrival[var] = best_key[0]
        best_cut[var] = best

    # Extract the cover from the POs downward.
    net = Network()
    node_of: Dict[int, int] = {}
    for pi_var, name in zip(aig.pis, aig.pi_names):
        node_of[pi_var] = net.add_pi(name)

    const_node: Dict[bool, int] = {}

    def map_var(var: int) -> int:
        if var in node_of:
            return node_of[var]
        if var == 0:
            if False not in const_node:
                const_node[False] = net.add_const(False)
            node_of[0] = const_node[False]
            return node_of[0]
        stack = [var]
        while stack:
            v = stack[-1]
            if v in node_of:
                stack.pop()
                continue
            leaves = best_cut[v]
            pending = [u for u in leaves if u not in node_of and u != 0]
            if pending:
                stack.extend(pending)
                continue
            stack.pop()
            tt = cut_tt(aig, v, list(leaves))
            tt_small, support = tt.shrink()
            fanins = [map_var(leaves[i]) for i in support]
            node_of[v] = net.add_node(fanins, tt_small)
        return node_of[var]

    for po_lit, name in zip(aig.pos, aig.po_names):
        var = lit_var(po_lit)
        neg = lit_neg(po_lit)
        if var == 0:
            nid = net.add_const(neg)  # lit 1 is constant true
            net.add_po(nid, False, name)
            continue
        net.add_po(map_var(var), neg, name)
    return net
