"""Flow-level contracts of the --sat-portfolio knob.

``off`` must reproduce the historical single-config flow bit-for-bit;
the racing modes may settle budget-limited queries differently but must
stay CEC-equivalent and never-worse in depth (DESIGN 3.19).
"""

import io

import pytest

from repro.adders import ripple_carry_adder
from repro.aig import depth, write_aag
from repro.cec import check_equivalence
from repro.core import LookaheadOptimizer, lookahead_flow, recover_area
from repro.sat.portfolio import GLOBAL_UNSAT_CACHE


def _dump(aig):
    buf = io.StringIO()
    write_aag(aig, buf)
    return buf.getvalue()


def _optimize(aig, **kwargs):
    with LookaheadOptimizer(
        max_rounds=2, max_outputs_per_round=4, sim_width=256, workers=1,
        **kwargs,
    ) as opt:
        return opt.optimize(aig)


class TestOffIsIdentity:
    def test_off_matches_the_default_flow_on_rca8(self):
        aig = ripple_carry_adder(8)
        default = _optimize(aig)
        off = _optimize(aig, sat_portfolio="off")
        assert _dump(off) == _dump(default)

    def test_off_matches_the_default_flow_on_c432(self):
        from repro.bench import BENCHMARKS

        aig = BENCHMARKS["C432"]()
        default = _optimize(aig)
        off = _optimize(aig, sat_portfolio="off")
        assert _dump(off) == _dump(default)


class TestRacingModes:
    @pytest.mark.parametrize("mode", ["sprint", "race"])
    def test_racing_upholds_the_optimizer_contract(self, mode):
        from repro.bench import BENCHMARKS

        aig = BENCHMARKS["C432"]()
        GLOBAL_UNSAT_CACHE.clear()
        out = _optimize(aig, sat_portfolio=mode)
        GLOBAL_UNSAT_CACHE.clear()
        assert check_equivalence(aig, out)
        assert depth(out) <= depth(aig)

    def test_race_is_deterministic_from_a_cold_cache(self):
        aig = ripple_carry_adder(8)
        dumps = []
        for _ in range(2):
            GLOBAL_UNSAT_CACHE.clear()
            dumps.append(_dump(_optimize(aig, sat_portfolio="race")))
        GLOBAL_UNSAT_CACHE.clear()
        assert dumps[0] == dumps[1]

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError):
            LookaheadOptimizer(sat_portfolio="warp")


class TestThreading:
    def test_flow_accepts_the_knob(self):
        aig = ripple_carry_adder(8)
        GLOBAL_UNSAT_CACHE.clear()
        out = lookahead_flow(aig, max_iterations=1, sat_portfolio="sprint")
        GLOBAL_UNSAT_CACHE.clear()
        assert check_equivalence(aig, out)

    def test_area_recovery_accepts_the_knob(self):
        aig = ripple_carry_adder(8)
        GLOBAL_UNSAT_CACHE.clear()
        out = recover_area(aig, effort="medium", sat_portfolio="race")
        GLOBAL_UNSAT_CACHE.clear()
        assert check_equivalence(aig, out)
        assert out.num_ands() <= aig.num_ands()

    def test_cli_exposes_the_choices(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(
            ["optimize", "x.aag", "--sat-portfolio", "race"]
        )
        assert args.sat_portfolio == "race"
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["optimize", "x.aag", "--sat-portfolio", "warp"]
            )
