"""`repro serve` / `repro submit` as real subprocesses: signals, exits.

The daemon's signal handling (SIGTERM -> drain -> exit 0 -> endpoint
file removed) can only be observed from outside the process, so these
tests boot the actual CLI.
"""

from __future__ import annotations

import io
import json
import os
import signal
import subprocess
import sys
import time

import pytest

from repro.adders import ripple_carry_adder
from repro.aig import write_aag
from repro.cli import main as cli_main

SRC = os.path.join(
    os.path.dirname(
        os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    ),
    "src",
)


def _write_rca(path, width=4):
    with open(path, "w") as fh:
        write_aag(ripple_carry_adder(width), fh)


def _spawn_daemon(tmp_path, *extra):
    env = dict(os.environ, PYTHONPATH=SRC)
    proc = subprocess.Popen(
        [
            sys.executable, "-m", "repro", "serve",
            "--store", str(tmp_path / "store.db"),
            "--workers", "1",
            *extra,
        ],
        env=env,
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
    )
    endpoint = tmp_path / "store.db.serve.json"
    deadline = time.monotonic() + 60
    while time.monotonic() < deadline:
        if endpoint.exists():
            return proc, endpoint
        if proc.poll() is not None:
            break
        time.sleep(0.1)
    out, _ = proc.communicate(timeout=10)
    raise AssertionError(f"daemon never advertised: {out.decode()}")


def _submit(tmp_path, circuit, *extra):
    env = dict(os.environ, PYTHONPATH=SRC)
    return subprocess.run(
        [
            sys.executable, "-m", "repro", "submit", str(circuit),
            "--store", str(tmp_path / "store.db"),
            *extra,
        ],
        env=env,
        capture_output=True,
        text=True,
        timeout=300,
    )


class TestServeLifecycle:
    def test_round_trip_warm_resubmit_and_sigterm_drain(self, tmp_path):
        circuit = tmp_path / "c.aag"
        _write_rca(circuit)
        proc, endpoint = _spawn_daemon(tmp_path)
        try:
            out1 = tmp_path / "out1.aag"
            out2 = tmp_path / "out2.aag"
            r1 = _submit(tmp_path, circuit, "-o", str(out1))
            assert r1.returncode == 0, r1.stderr
            assert "serve[lookahead]" in r1.stdout
            r2 = _submit(tmp_path, circuit, "-o", str(out2))
            assert r2.returncode == 0, r2.stderr
            # Bit-identical answer, served warm from the shared store.
            assert out1.read_text() == out2.read_text()

            env = dict(os.environ, PYTHONPATH=SRC)
            status = subprocess.run(
                [
                    sys.executable, "-m", "repro", "serve", "--status",
                    "--store", str(tmp_path / "store.db"),
                ],
                env=env, capture_output=True, text=True, timeout=60,
            )
            assert status.returncode == 0, status.stderr
            snap = json.loads(status.stdout)
            assert snap["jobs"]["completed"] == 2
            assert snap["store_hits"] > 0  # the resubmit hit the store
        finally:
            proc.send_signal(signal.SIGTERM)
            out, _ = proc.communicate(timeout=60)
        assert proc.returncode == 0, out.decode()
        assert b"drained" in out
        assert not endpoint.exists()  # advertised endpoint cleaned up

    def test_sigterm_on_idle_daemon_exits_zero(self, tmp_path):
        proc, endpoint = _spawn_daemon(tmp_path)
        proc.send_signal(signal.SIGTERM)
        out, _ = proc.communicate(timeout=60)
        assert proc.returncode == 0, out.decode()
        assert not endpoint.exists()

    def test_stop_probe_drains_daemon(self, tmp_path):
        proc, _ = _spawn_daemon(tmp_path)
        env = dict(os.environ, PYTHONPATH=SRC)
        stop = subprocess.run(
            [
                sys.executable, "-m", "repro", "serve", "--stop",
                "--store", str(tmp_path / "store.db"),
            ],
            env=env, capture_output=True, text=True, timeout=60,
        )
        assert stop.returncode == 0, stop.stderr
        out, _ = proc.communicate(timeout=60)
        assert proc.returncode == 0, out.decode()


class TestClientErrors:
    def test_submit_without_daemon_fails_cleanly(self, tmp_path, capsys):
        circuit = tmp_path / "c.aag"
        _write_rca(circuit)
        rc = cli_main(
            [
                "submit", str(circuit),
                "--store", str(tmp_path / "no-daemon.db"),
            ]
        )
        assert rc == 1
        assert "error:" in capsys.readouterr().err

    def test_status_without_daemon_fails_cleanly(self, tmp_path, capsys):
        rc = cli_main(
            [
                "serve", "--status",
                "--store", str(tmp_path / "no-daemon.db"),
            ]
        )
        assert rc == 1
        assert "error:" in capsys.readouterr().err

    def test_submit_to_stale_endpoint_reports_no_daemon(self, tmp_path, capsys):
        circuit = tmp_path / "c.aag"
        _write_rca(circuit)
        # An endpoint file whose daemon is gone: connect must fail fast.
        stale = tmp_path / "no-daemon.db.serve.json"
        stale.write_text(
            json.dumps({"host": "127.0.0.1", "port": 1, "pid": -1})
        )
        rc = cli_main(
            [
                "submit", str(circuit),
                "--store", str(tmp_path / "no-daemon.db"),
            ]
        )
        assert rc == 1
        assert "error:" in capsys.readouterr().err
