"""Table 1: best AIG levels after timing optimization of n-bit adders.

Regenerates the paper's Table 1 — the theoretical optimum and the best
result of each flow (SIS, ABC, Synopsys DC stand-ins, and lookahead
synthesis) on ripple-carry adders for n = 2, 4, 8, 16.

Run:  pytest benchmarks/bench_table1_adders.py --benchmark-only -s
"""

from __future__ import annotations

from typing import Dict

import pytest

from repro.adders import optimal_cla_levels, ripple_carry_adder
from repro.aig import depth
from repro.cec import check_equivalence

from conftest import FLOWS

SIZES = (2, 4, 8, 16)

_results: Dict[int, Dict[str, int]] = {}


def _row(n: int) -> Dict[str, int]:
    if n in _results:
        return _results[n]
    aig = ripple_carry_adder(n)
    row = {"Optimum": optimal_cla_levels(n)}
    for flow_name, flow in FLOWS.items():
        optimized = flow(aig)
        assert check_equivalence(aig, optimized)
        row[flow_name] = depth(optimized)
    _results[n] = row
    return row


@pytest.mark.parametrize("n", SIZES)
def test_table1_row(benchmark, n):
    row = benchmark.pedantic(_row, args=(n,), rounds=1, iterations=1)
    # Shape assertions from the paper: lookahead is the best synthesis
    # result and tracks the optimum; ABC (area flow) trails.
    assert row["Lookahead"] <= row["DC"] <= row["ABC"]
    assert row["Lookahead"] <= row["SIS"]
    assert row["Lookahead"] <= 2 * row["Optimum"]


def test_print_table1(benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    print("\n\nTable 1: best AIG levels, n-bit ripple-carry adders")
    cols = ["Optimum", "SIS", "ABC", "DC", "Lookahead"]
    print(f"{'n':>4} " + " ".join(f"{c:>10}" for c in cols))
    for n in SIZES:
        row = _row(n)
        print(f"{n:>4} " + " ".join(f"{row[c]:>10}" for c in cols))
