"""Table 2: the 15-circuit comparison of SIS / ABC / DC / Lookahead.

For every benchmark circuit and flow this regenerates the paper's row:
AIG gates, AIG levels, technology-mapped delay, and power at 1 GHz, plus
the headline averages (level and delay reduction of lookahead synthesis
over each baseline).  Absolute numbers differ from the paper (different
cell library, stand-in netlists); the reproduced quantity is the *shape*:
who wins, and by roughly what factor.

The row definition (flows, size-scaled Lookahead effort, metrics) is
:mod:`repro.bench.table2`; the aggregated table and averages are printed
by the terminal-summary hook in ``conftest.py``.  The sharded equivalent
of this bench — resumable, mergeable, dispatchable to `repro serve`
daemons — is ``repro bench plan/run/merge/report``.

Run:  pytest benchmarks/bench_table2_circuits.py --benchmark-only -s
Set REPRO_BENCH_QUICK=1 to restrict to the small circuits.
"""

from __future__ import annotations

import pytest

from repro.bench.table2 import circuit_names, effort_options, get_circuit

from conftest import FLOWS, run_flow


@pytest.mark.parametrize("name", circuit_names())
def test_table2_row(benchmark, name):
    aig = get_circuit(name)

    def build_row():
        return {
            flow: run_flow(name, flow, aig) for flow in FLOWS
        }

    row = benchmark.pedantic(build_row, rounds=1, iterations=1)
    levels = row["Lookahead"]["levels"]
    if not effort_options(aig.num_ands()):
        # Full-effort circuits carry the paper's per-row shape: lookahead
        # is never worse than the best baseline on levels, and never
        # worse than ABC on mapped delay.
        best_baseline_levels = min(
            row[f]["levels"] for f in ("SIS", "ABC", "DC")
        )
        assert levels <= best_baseline_levels
        assert row["Lookahead"]["delay_ps"] <= row["ABC"]["delay_ps"] * 1.05
    else:
        # Bounded-effort fabrics restructure only the most critical
        # outputs, so the hard claims are against the historically
        # faithful baselines; DC's global delay restructuring may keep a
        # level or two on the widest fabrics (BENCH_table2.json records
        # the full rows).
        assert levels <= row["SIS"]["levels"]
        assert levels <= row["ABC"]["levels"]
        assert levels <= row["DC"]["levels"] + 2
