"""Cross-round cone cache as namespace views over :mod:`repro.store`.

Every per-output computation in a lookahead round — the SPCF, the global
node truth tables feeding it, and the reduce/simplify/reconstruct verdict —
is a pure function of the output's fan-in cone plus a handful of optimizer
parameters.  Rounds and `lookahead_flow` iterations revisit mostly-unchanged
circuits, so identical cones recur constantly.  :class:`ConeCache` memoizes
three things across rounds (and, with a persistent store, across
*invocations*):

* **SPCF payloads** per ``(cone fingerprint, mode, kind, sim params)`` —
  the chosen Δ's truth table or signature, serialized to plain ints so the
  entry is process-independent;
* **node truth tables** per cone fingerprint (tt mode), shared by the
  Δ-relaxation loop and later rounds;
* **rejected-cone fingerprints**: cones whose decomposition produced no
  accepted replacement under a given configuration are skipped outright in
  later rounds.

:class:`ConeCache` owns no tables of its own anymore: it is three
:class:`repro.store.Namespace` views (``spcf``/``tts``/``rejected``) over
a :class:`repro.store.ResultStore` — a private bounded
:class:`~repro.store.MemoryStore` by default, or any store the optimizer
hands it (e.g. the tiered disk store behind ``--store``), in which case
entries survive the process.  Invalidation is automatic either way: any
structural change to a cone changes its fingerprint (see
``aig.cone_fingerprint``), so stale entries are simply never looked up
again.  Hit and miss counts are reported through :mod:`repro.perf` under
both the legacy ``cache.*`` names and the per-namespace ``store.*`` names.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from .. import perf
from ..aig import AIG, cone_fingerprint, node_tts
from ..store import MemoryStore, Namespace, ResultStore
from ..store import runtime as store_runtime
from ..tt import TruthTable

SpcfPayload = Tuple
"""Serialized SPCF: ``('tt', bits, nvars)`` or ``('sim', signature)``."""


def _encode_tts(tts: List[TruthTable]) -> list:
    return [(tt.bits, tt.nvars) for tt in tts]


def _decode_tts(payload: list) -> List[TruthTable]:
    return [TruthTable(bits, nvars) for bits, nvars in payload]


class ConeCache:
    """Memo of per-cone lookahead results; a view over a result store."""

    def __init__(
        self, max_entries: int = 4096, store: Optional[ResultStore] = None
    ):
        self.max_entries = max_entries
        if store is None:
            store = MemoryStore(
                default_limit=max_entries,
                limits={
                    "spcf": max_entries,
                    "tts": max_entries,
                    "rejected": max_entries,
                },
            )
        self.store = store
        self._spcf = Namespace(store, "spcf")
        self._tts = Namespace(store, "tts", encode=_encode_tts, decode=_decode_tts)
        self._rejected = Namespace(store, "rejected")

    # -- SPCF payloads -----------------------------------------------------

    def get_spcf(self, key: Tuple) -> Optional[SpcfPayload]:
        payload = self._spcf.get(key)
        perf.incr("cache.spcf.hit" if payload is not None else "cache.spcf.miss")
        return payload

    def put_spcf(self, key: Tuple, payload: SpcfPayload) -> None:
        self._spcf.put(key, payload)

    # -- node truth tables -------------------------------------------------

    def get_node_tts(self, fp: int) -> Optional[List[TruthTable]]:
        tts = self._tts.get(fp)
        perf.incr("cache.tts.hit" if tts is not None else "cache.tts.miss")
        return tts

    def put_node_tts(self, fp: int, tts: List[TruthTable]) -> None:
        self._tts.put(fp, tts)

    # -- rejected cones ----------------------------------------------------

    def is_rejected(self, key: Tuple) -> bool:
        hit = self._rejected.contains(key)
        if hit:
            perf.incr("cache.rejected.hit")
        return hit

    def mark_rejected(self, key: Tuple) -> None:
        self._rejected.put(key, True)

    # -- maintenance -------------------------------------------------------

    def clear(self) -> None:
        self._spcf.clear()
        self._tts.clear()
        self._rejected.clear()

    def stats(self) -> Dict[str, int]:
        return {
            "spcf_entries": self._spcf.entries(),
            "tts_entries": self._tts.entries(),
            "rejected_entries": self._rejected.entries(),
        }

    def __repr__(self) -> str:
        s = self.stats()
        return (
            f"ConeCache(spcf={s['spcf_entries']}, tts={s['tts_entries']}, "
            f"rejected={s['rejected_entries']})"
        )


# -- worker-side node-tts memo -----------------------------------------------
#
# Workers cannot see the parent's ConeCache, so each worker process keeps
# a small identity-preserving pool of tabulated cones.  The pool is a
# plain MemoryStore holding the lists by reference — no codec on the hot
# path.  When the process has a persistent runtime store, misses also
# read through (and tabulations write through) the shared ``tts``
# namespace, the same keyspace ConeCache.put_node_tts populates, so a
# disk-warm run skips tabulation even in fresh worker processes.

_WORKER_POOL = MemoryStore(
    default_limit=store_runtime.MEMORY_LIMITS["worker_tts"],
    limits={"dp": store_runtime.MEMORY_LIMITS["dp"]},
)
_WORKER_TTS = Namespace(_WORKER_POOL, "worker_tts")
_WORKER_DP = Namespace(_WORKER_POOL, "dp")

_MISSING: Any = object()


def node_tts_cached(aig: AIG, fp: Optional[int] = None) -> List[TruthTable]:
    """Process-local memoized ``node_tts`` keyed by cone fingerprint.

    Used inside worker processes (which cannot see the parent's
    :class:`ConeCache`) so the Δ-relaxation loop and repeated tasks on the
    same cone tabulate the cone once per process.
    """
    if fp is None:
        fp = cone_fingerprint(aig, aig.pos)
    tts = _WORKER_TTS.get(fp, _MISSING)
    if tts is _MISSING:
        tts = None
        if store_runtime.is_persistent():
            shared = store_runtime.get_store().namespace(
                "tts", encode=_encode_tts, decode=_decode_tts
            )
            tts = shared.get(fp)
        if tts is None:
            perf.incr("cache.tts.miss")
            tts = node_tts(aig)
            if store_runtime.is_persistent():
                shared.put(fp, tts)
        else:
            perf.incr("cache.tts.hit")
        _WORKER_TTS.put(fp, tts)
    else:
        perf.incr("cache.tts.hit")
    return tts


# -- worker-side SPCF DP-memo pool --------------------------------------------
#
# A (node, required-length) DP entry depends only on the cone structure,
# the node truth tables, and the arrival profile — not on the queried Δ —
# so the same table serves the whole Δ-relaxation loop, every output
# sharing the cone, and later rounds/flow iterations that revisit an
# unchanged cone.  Keyed alongside the ConeCache fingerprints; the memo
# dicts are mutated in place by the DP, so a pool hit resumes exactly
# where the previous query stopped tabulating.  That in-place mutation is
# also why this pool is never persisted: the store hands the exact same
# dict object back on every hit, which only a by-reference memory tier
# can promise.


def dp_memo_cached(
    fp: int, relaxed: bool, num_pis: int, model_key: Tuple = ("unit",)
) -> Dict:
    """Process-local shared SPCF DP memo for one (cone, kind, model).

    ``num_pis`` guards against fingerprint-equal cones embedded in PI
    spaces of different width (truth tables would not be comparable);
    ``model_key`` separates arrival regimes, whose arrival profiles give
    different DP tables for the same structure.
    """
    key = (fp, relaxed, num_pis, model_key)
    memo = _WORKER_DP.get(key, _MISSING)
    if memo is _MISSING:
        perf.incr("cache.dp.miss")
        memo = {}
        _WORKER_DP.put(key, memo)
    else:
        perf.incr("cache.dp.hit")
    return memo
