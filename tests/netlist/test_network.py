"""Tests for technology-independent networks."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.netlist import (
    Network,
    compute_levels,
    cover_level,
    critical_inputs,
    network_depth,
    node_level,
    renode,
    network_to_aig,
    tree_level,
)
from repro.sop import Cover
from repro.tt import TruthTable
from repro.aig import AIG, po_tts
from repro.cec import check_equivalence

from ..aig.test_aig import random_aig


AND2 = TruthTable.from_function(lambda a, b: a and b, 2)
XOR2 = TruthTable.from_function(lambda a, b: a != b, 2)


def small_network():
    net = Network()
    a, b, c = net.add_pi("a"), net.add_pi("b"), net.add_pi("c")
    n1 = net.add_node([a, b], AND2)
    n2 = net.add_node([n1, c], XOR2)
    net.add_po(n2, False, "y")
    return net, (a, b, c, n1, n2)


class TestStructure:
    def test_evaluate(self):
        net, (a, b, c, n1, n2) = small_network()
        assert net.evaluate([True, True, False]) == [True]
        assert net.evaluate([True, True, True]) == [False]
        assert net.evaluate([False, True, True]) == [True]

    def test_po_negation(self):
        net, (_a, _b, _c, _n1, n2) = small_network()
        net.add_po(n2, True, "ybar")
        out = net.evaluate([True, True, False])
        assert out == [True, False]

    def test_global_tts(self):
        net, ids = small_network()
        tts = net.po_tts()
        va, vb, vc = (TruthTable.var(i, 3) for i in range(3))
        assert tts[0] == (va & vb) ^ vc

    def test_bad_fanin_rejected(self):
        net = Network()
        with pytest.raises(ValueError):
            net.add_node([42], TruthTable.var(0, 1))

    def test_tt_width_mismatch_rejected(self):
        net = Network()
        a = net.add_pi()
        with pytest.raises(ValueError):
            net.add_node([a], AND2)

    def test_set_function_on_pi_rejected(self):
        net = Network()
        a = net.add_pi()
        with pytest.raises(ValueError):
            net.set_function(a, TruthTable.var(0, 0))

    def test_extract_po_cone_keeps_pi_alignment(self):
        net, ids = small_network()
        cone = net.extract_po_cone(0)
        assert len(cone.pis) == len(net.pis)
        assert cone.po_tts() == net.po_tts()

    def test_topo_includes_dangling(self):
        net, (a, b, _c, _n1, _n2) = small_network()
        dangling = net.add_node([a, b], XOR2)
        assert dangling in net.topo_order()

    def test_payload_roundtrip_is_exact(self):
        net, (_a, _b, _c, _n1, n2) = small_network()
        net.add_po(n2, True, "ybar")
        back = Network.from_payload(net.to_payload())
        # Exactness matters: ids, order, names, and _next_id all feed the
        # splice path, so the round trip must be indistinguishable.
        assert back.to_payload() == net.to_payload()
        assert back.pis == net.pis
        assert back.pos == net.pos
        assert back.po_names == net.po_names
        assert back._next_id == net._next_id
        assert list(back.nodes) == list(net.nodes)
        assert back.po_tts() == net.po_tts()
        # The copy is independent: growing it leaves the original alone.
        back.add_pi("extra")
        assert len(net.pis) == 3

    @given(st.integers(0, 15))
    @settings(deadline=None, max_examples=8)
    def test_payload_roundtrip_random(self, seed):
        aig = random_aig(seed, n_pis=6, n_nodes=35, n_pos=4)
        net = renode(aig, k=5)
        back = Network.from_payload(net.to_payload())
        assert back.to_payload() == net.to_payload()
        assert back.po_tts() == net.po_tts()


class TestLevelModel:
    def test_tree_level_uniform(self):
        assert tree_level([0, 0, 0, 0]) == 2
        assert tree_level([0, 0, 0]) == 2
        assert tree_level([0]) == 0
        assert tree_level([]) == 0

    def test_tree_level_skewed_arrivals(self):
        # A late input can hide balanced early merging: (((0,0)->1,1)->2,5)->6.
        assert tree_level([5, 0, 0, 1]) == 6

    def test_cover_level_and_or(self):
        # Two 2-literal cubes at arrival 0: AND trees depth 1, OR depth 2.
        cov = Cover.parse(["11-", "--1"])
        assert cover_level(cov, [0, 0, 0]) == 2

    def test_node_level_uses_cheaper_phase(self):
        # NOR of 4 inputs: on-set needs a single 4-literal cube (level 2);
        # the off-set is 4 single-literal cubes (OR tree level 2): equal here,
        # but an inverter-free complement must never be worse.
        nor4 = TruthTable.from_function(
            lambda a, b, c, d: not (a or b or c or d), 4
        )
        assert node_level(nor4, [0, 0, 0, 0]) == 2

    def test_constant_node_level(self):
        assert node_level(TruthTable.const(True, 2), [5, 5]) == 0

    def test_network_depth(self):
        # AND at level 1 feeds a XOR (2 SOP levels on a level-1 input): 3.
        net, _ = small_network()
        assert network_depth(net) == 3

    def test_critical_inputs_late_dominates(self):
        # XOR with one late input: only the late one is critical.
        crit = critical_inputs(XOR2, [5, 0])
        assert crit == [0]

    def test_critical_inputs_tie(self):
        crit = critical_inputs(XOR2, [3, 3])
        assert set(crit) == {0, 1}


class TestRenode:
    @given(st.integers(0, 25))
    @settings(deadline=None, max_examples=12)
    def test_roundtrip_equivalence(self, seed):
        aig = random_aig(seed, n_pis=6, n_nodes=35, n_pos=4)
        net = renode(aig, k=5)
        assert net.po_tts() == po_tts(aig)
        back = network_to_aig(net)
        assert check_equivalence(aig, back)

    @given(st.integers(0, 10))
    @settings(deadline=None, max_examples=6)
    def test_cluster_size_bound(self, seed):
        aig = random_aig(seed, n_pis=8, n_nodes=50)
        k = 4
        net = renode(aig, k=k)
        for nid in net.topo_order():
            assert len(net.nodes[nid].fanins) <= k

    def test_constant_po(self):
        aig = AIG()
        aig.add_pi()
        aig.add_po(1, "one")
        net = renode(aig)
        assert net.po_tts()[0].is_const1

    def test_pi_fed_po(self):
        aig = AIG()
        x = aig.add_pi()
        aig.add_po(x ^ 1, "notx")
        net = renode(aig)
        assert net.po_tts()[0] == ~TruthTable.var(0, 1)
