"""Command-line interface: optimize and map circuits from files.

Usage (also via ``python -m repro``):

    python -m repro stats   circuit.aag --arrival a3=5,b3=5
    python -m repro optimize circuit.aag -o out.aag --flow lookahead
    python -m repro optimize circuit.aag --arrival-file arrivals.json
    python -m repro map     circuit.aag -o out.v
    python -m repro bench   --circuit C432
    python -m repro bench plan  -o manifest.json --quick
    python -m repro bench run   --manifest manifest.json --shard 1/2
    python -m repro bench merge --manifest manifest.json -o BENCH_table2.json
    python -m repro bench report --experiments EXPERIMENTS.md
    python -m repro fuzz    --seed 0 --budget 60
    python -m repro serve   --store results.db --workers 4
    python -m repro submit  circuit.aag -o out.aag --flow lookahead

Input formats: ASCII AIGER (.aag) and BLIF (.blif); outputs AIGER, BLIF,
or gate-level Verilog (by extension).  ``--arrival name=t,...`` and
``--arrival-file file.json`` prescribe non-uniform PI arrival times (in
logic levels); the lookahead flows then optimize completion time instead
of raw depth, and reports show arrival-aware timing.
"""

from __future__ import annotations

import argparse
import io
import json
import os
import sys
import time
from typing import Callable, Dict, Optional

from . import perf
from .aig import AIG, depth, read_aag, read_blif, write_aag, write_blif
from .cec import check_equivalence
from .core import lookahead_flow, optimize_lookahead, validate_walk_modes
from .mapping import dynamic_power_uw, map_aig, mapped_delay
from .mapping.verilog import write_verilog
from .opt import abc_resyn2rs, dc_map_effort_high, sis_best
from .store import SqliteStore
from .store.runtime import default_store_path
from .timing import (
    AigTimingEngine,
    load_arrival_file,
    parse_arrival_spec,
    resolve_arrivals,
)

ArrivalMap = Optional[Dict[str, int]]


def _arrival_agnostic(fn: Callable[[AIG], AIG], name: str):
    """Wrap a conventional flow that has no notion of PI arrival times."""

    def run(aig: AIG, arrival_times: ArrivalMap = None) -> AIG:
        if arrival_times:
            print(
                f"warning: flow {name!r} ignores --arrival times",
                file=sys.stderr,
            )
        return fn(aig)

    return run


FLOWS: Dict[str, Callable[..., AIG]] = {
    "lookahead": lambda a, arrival_times=None, **kw: lookahead_flow(
        a, arrival_times=arrival_times, **kw
    ),
    # optimize_lookahead context-manages the optimizer, so the worker
    # pool is shut down when the flow finishes.
    "lookahead-only": lambda a, arrival_times=None, **kw: optimize_lookahead(
        a, max_rounds=12, arrival_times=arrival_times, **kw
    ),
    "sis": _arrival_agnostic(sis_best, "sis"),
    "abc": _arrival_agnostic(abc_resyn2rs, "abc"),
    "dc": _arrival_agnostic(dc_map_effort_high, "dc"),
}


def _parse_arrivals(args: argparse.Namespace, aig: AIG) -> ArrivalMap:
    """Merge --arrival-file and --arrival (the flag wins per name)."""
    arrivals: Dict[str, int] = {}
    if getattr(args, "arrival_file", None):
        arrivals.update(load_arrival_file(args.arrival_file))
    if getattr(args, "arrival", None):
        arrivals.update(parse_arrival_spec(args.arrival))
    if not arrivals:
        return None
    unknown = sorted(set(arrivals) - set(aig.pi_names))
    if unknown:
        print(
            "warning: arrival times for unknown inputs: "
            + ", ".join(unknown),
            file=sys.stderr,
        )
    return arrivals


def _add_arrival_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--arrival", metavar="NAME=T,...",
        help="prescribed PI arrival times (comma-separated name=time "
             "pairs, in logic levels)",
    )
    parser.add_argument(
        "--arrival-file", metavar="FILE",
        help="JSON file mapping PI names to arrival times "
             '(e.g. {"a3": 5, "b3": 5})',
    )


def _read_circuit(path: str) -> AIG:
    with open(path) as fh:
        if path.endswith(".blif"):
            return read_blif(fh)
        return read_aag(fh)


def _write_circuit(aig: AIG, path: str) -> None:
    with open(path, "w") as fh:
        if path.endswith(".blif"):
            write_blif(aig, fh)
        else:
            write_aag(aig, fh)


def cmd_stats(args: argparse.Namespace) -> int:
    aig = _read_circuit(args.input)
    arrivals = _parse_arrivals(args, aig)
    print(f"inputs : {aig.num_pis}")
    print(f"outputs: {aig.num_pos}")
    print(f"ands   : {aig.num_ands()}")
    print(f"levels : {depth(aig)}")
    if arrivals:
        engine = AigTimingEngine(aig, resolve_arrivals(arrivals))
        crit = engine.critical_pos()
        names = [aig.po_names[i] or f"po{i}" for i in crit]
        print(f"completion (prescribed arrivals): {engine.depth()}")
        print(f"critical outputs: {', '.join(names)}")
    return 0


def _store_spec(args: argparse.Namespace) -> Optional[str]:
    """Resolve --store/--no-store/$REPRO_STORE to a database path or None.

    Precedence: ``--no-store`` wins outright; an explicit ``--store``
    (with or without a path) comes next; the ``REPRO_STORE`` environment
    variable enables the store without flags; otherwise no store — the
    default CLI run stays fully process-local.
    """
    if args.no_store:
        return None
    if args.store is not None:
        return args.store if args.store != "" else default_store_path()
    if os.environ.get("REPRO_STORE"):
        return default_store_path()
    return None


def cmd_optimize(args: argparse.Namespace) -> int:
    if args.workers is not None:
        os.environ[perf.WORKERS_ENV] = str(args.workers)
    aig = _read_circuit(args.input)
    arrivals = _parse_arrivals(args, aig)
    store = _store_spec(args)
    flow = FLOWS[args.flow]
    flow_kwargs = {}
    if args.rank == "prune" and not args.rank_model:
        print("error: --rank prune requires --rank-model PATH",
              file=sys.stderr)
        return 2
    if args.rank_model and args.rank != "prune":
        print("error: --rank-model is only meaningful with --rank prune",
              file=sys.stderr)
        return 2
    if args.rank_data and args.rank != "log":
        print("error: --rank-data is only meaningful with --rank log",
              file=sys.stderr)
        return 2
    if args.flow.startswith("lookahead"):
        flow_kwargs["spcf_tier"] = args.spcf_tier
        flow_kwargs["spcf_prefilter"] = not args.no_spcf_prefilter
        flow_kwargs["area_recovery"] = not args.no_area_recovery
        flow_kwargs["area_effort"] = args.area_effort
        flow_kwargs["sat_portfolio"] = args.sat_portfolio
        flow_kwargs["store"] = store
        if args.walk_modes is not None:
            flow_kwargs["walk_modes"] = validate_walk_modes(
                [m.strip() for m in args.walk_modes.split(",") if m.strip()]
            )
        if args.rank != "off":
            flow_kwargs["rank"] = args.rank
            flow_kwargs["rank_model"] = args.rank_model
            flow_kwargs["rank_data"] = args.rank_data
    elif (
        args.spcf_tier != "auto"
        or args.no_spcf_prefilter
        or args.no_area_recovery
        or args.area_effort != "medium"
        or args.sat_portfolio != "off"
        or store is not None
        or args.walk_modes is not None
        or args.rank != "off"
    ):
        print(
            f"warning: flow {args.flow!r} ignores --spcf-tier/"
            "--no-spcf-prefilter/--area-effort/--no-area-recovery/"
            "--sat-portfolio/--store/--walk-modes/--rank",
            file=sys.stderr,
        )
    perf.reset()
    start = time.time()
    optimized = flow(aig, arrival_times=arrivals, **flow_kwargs)
    elapsed = time.time() - start
    if args.profile:
        print(perf.report(), file=sys.stderr)
    if not args.no_verify:
        if not check_equivalence(aig, optimized):
            print("ERROR: optimized circuit is not equivalent", file=sys.stderr)
            return 1
    print(
        f"{args.flow}: ands {aig.num_ands()} -> {optimized.num_ands()}, "
        f"levels {depth(aig)} -> {depth(optimized)} ({elapsed:.1f}s)"
    )
    if arrivals:
        model = resolve_arrivals(arrivals)
        before = AigTimingEngine(aig, model).depth()
        after = AigTimingEngine(optimized, model).depth()
        print(f"completion (prescribed arrivals): {before} -> {after}")
    if args.output:
        _write_circuit(optimized, args.output)
        print(f"wrote {args.output}")
    return 0


def cmd_map(args: argparse.Namespace) -> int:
    aig = _read_circuit(args.input)
    netlist = map_aig(aig)
    print(
        f"mapped: {netlist.num_gates} gates, area {netlist.area:.1f}, "
        f"delay {mapped_delay(netlist):.0f} ps, "
        f"power {dynamic_power_uw(netlist):.1f} uW @1GHz"
    )
    if args.output:
        with open(args.output, "w") as fh:
            write_verilog(netlist, fh)
        print(f"wrote {args.output}")
    return 0


def cmd_fuzz(args: argparse.Namespace) -> int:
    from .verify import INVARIANTS, fuzz

    if args.list_checks:
        for name in sorted(INVARIANTS):
            print(name)
        return 0
    perf.reset()
    report = fuzz(
        seed=args.seed,
        budget_s=args.budget,
        max_cases=args.max_cases,
        checks=args.check or None,
        artifact_dir=args.artifact_dir,
        shrink=not args.no_shrink,
        keep_going=args.keep_going,
    )
    if args.profile:
        print(perf.report(), file=sys.stderr)
    print(report.summary())
    if not report.ok:
        for failure in report.failures:
            if failure.artifact_path:
                print(
                    f"regression artifact: {failure.artifact_path}",
                    file=sys.stderr,
                )
        return 1
    return 0


def cmd_rank_fit(args: argparse.Namespace) -> int:
    """Fit a candidate-ranking model from --rank log datasets."""
    from .rank import fit_model, load_dataset

    rows = load_dataset(args.data)
    if not rows:
        print("error: no dataset rows in " + ", ".join(args.data),
              file=sys.stderr)
        return 1
    model = fit_model(
        rows,
        target_recall=args.target_recall,
        meta={"datasets": list(args.data)},
    )
    model.save(args.output)
    accepts = sum(int(r["accept"]) for r in rows)
    kind = "pass-through" if model.meta.get("degenerate") else model.kind
    print(
        f"fitted {kind} model on {len(rows)} rows ({accepts} accepts); "
        f"threshold {model.threshold:.6g}"
    )
    print(f"wrote {args.output} (fingerprint {model.fingerprint()[:16]})")
    if args.store is not None:
        path = args.store if args.store else default_store_path()
        store = SqliteStore(path)
        try:
            store.namespace("rank_model").put(
                model.fingerprint(), model.payload()
            )
        finally:
            store.close()
        print(f"stored rank_model {model.fingerprint()[:16]} in {path}")
    return 0


def cmd_cache(args: argparse.Namespace) -> int:
    """Inspect and reset the persistent result store."""
    path = args.store if args.store else default_store_path()
    if args.action == "path":
        print(path)
        return 0
    if not os.path.exists(path):
        print(f"no result store at {path}")
        return 0 if args.action == "stats" else 1
    store = SqliteStore(path)
    try:
        if args.action == "stats":
            stats = store.stats()
            total = sum(info["entries"] for info in stats.values())
            print(f"store : {path}")
            print(f"size  : {store.file_size()} bytes")
            print(f"total : {total} entries")
            for ns in sorted(stats):
                print(f"  {ns:12s} {stats[ns]['entries']} entries")
            return 0
        # clear
        removed = store.invalidate(args.namespace or None)
        scope = args.namespace or "all namespaces"
        print(f"cleared {removed} entries ({scope}) from {path}")
        return 0
    finally:
        store.close()


def _serve_store(args: argparse.Namespace) -> Optional[str]:
    """Resolve the daemon's store path.

    Unlike ``optimize`` (process-local by default), ``serve`` persists by
    default — a daemon exists to keep answers warm across jobs and
    restarts — so only ``--no-store`` opts out.
    """
    if args.no_store:
        return None
    if args.store:
        return args.store
    return default_store_path()


def cmd_serve(args: argparse.Namespace) -> int:
    from .serve import ReproDaemon, ServeClient, ServeError

    store = _serve_store(args)
    if args.status or args.stop:
        try:
            client = ServeClient.resolve(
                endpoint=args.endpoint,
                store=store,
                endpoint_file=args.endpoint_file,
            )
            if args.stop:
                client.shutdown()
                print(f"daemon at {client.host}:{client.port} draining")
            else:
                status = client.status()
                print(json.dumps(status, indent=2, sort_keys=True))
        except ServeError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 1
        return 0
    daemon = ReproDaemon(
        store=store,
        workers=args.workers,
        host=args.host,
        port=args.port,
        job_timeout=args.job_timeout,
        max_batch=args.max_batch,
        queue_limit=args.queue_limit,
        runners=args.runners,
        endpoint_file=args.endpoint_file,
    )

    def announce(d: ReproDaemon) -> None:
        print(
            f"repro serve: listening on {d.host}:{d.port} "
            f"(store {store or '(memory only)'}, pid {os.getpid()})",
            flush=True,
        )

    daemon.serve_forever(on_ready=announce)
    print("repro serve: drained, exiting")
    return 0


def cmd_submit(args: argparse.Namespace) -> int:
    from .serve import ServeClient, ServeError

    with open(args.input) as fh:
        text = fh.read()
    fmt = "blif" if args.input.endswith(".blif") else "aag"
    arrivals: Dict[str, int] = {}
    if args.arrival_file:
        arrivals.update(load_arrival_file(args.arrival_file))
    if args.arrival:
        arrivals.update(parse_arrival_spec(args.arrival))
    options: Dict[str, object] = {"flow": args.flow}
    if arrivals:
        options["arrivals"] = arrivals
    if args.verify:
        options["verify"] = True
    try:
        client = ServeClient.resolve(
            endpoint=args.endpoint,
            store=args.store or None,
            endpoint_file=args.endpoint_file,
        )
        result = client.submit(
            text,
            options=options,
            timeout=args.timeout,
            fmt=fmt,
            return_circuit=bool(args.output),
        )
    except ServeError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    inp = result["input"]
    store_info = result.get("store", {})
    print(
        f"serve[{args.flow}]: ands {inp['ands']} -> {result['ands']}, "
        f"levels {inp['depth']} -> {result['depth']} "
        f"({result['elapsed_s']:.1f}s, "
        f"store hit rate {store_info.get('hit_rate', 0.0):.1%})"
    )
    if args.output:
        optimized = read_aag(io.StringIO(result["circuit"]))
        _write_circuit(optimized, args.output)
        print(f"wrote {args.output}")
    return 0


def cmd_bench(args: argparse.Namespace) -> int:
    from .bench import BENCHMARKS

    names = [args.circuit] if args.circuit else list(BENCHMARKS)
    for name in names:
        if name not in BENCHMARKS:
            print(f"unknown circuit {name!r}; available: "
                  + ", ".join(BENCHMARKS), file=sys.stderr)
            return 1
        aig = BENCHMARKS[name]()
        print(
            f"{name:24s} {aig.num_pis:4d}/{aig.num_pos:4d} "
            f"ands {aig.num_ands():5d} levels {depth(aig):3d}"
        )
        if args.output_dir:
            path = f"{args.output_dir}/{name}.aag"
            _write_circuit(aig, path)
    return 0


def _split_csv(value: Optional[str]):
    if not value:
        return None
    return [item for item in (p.strip() for p in value.split(",")) if item]


def cmd_bench_plan(args: argparse.Namespace) -> int:
    from .bench import orchestrator, table2

    circuits = _split_csv(args.circuits)
    if args.quick:
        if circuits:
            print("error: --quick and --circuits are exclusive",
                  file=sys.stderr)
            return 1
        circuits = list(table2.QUICK_SET)
    try:
        manifest = orchestrator.plan_manifest(
            circuits=circuits, flows=_split_csv(args.flows)
        )
    except orchestrator.OrchestratorError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    orchestrator.write_manifest(manifest, args.output)
    print(
        f"planned {len(manifest['jobs'])} jobs "
        f"({len(manifest['circuits'])} circuits x "
        f"{len(manifest['flows'])} flows) -> {args.output}\n"
        f"fingerprint {manifest['fingerprint'][:16]}"
    )
    return 0


def cmd_bench_run(args: argparse.Namespace) -> int:
    from .bench import orchestrator
    from .serve import ServeClient, ServeError

    if args.workers is not None:
        os.environ[perf.WORKERS_ENV] = str(args.workers)
    try:
        manifest = orchestrator.load_manifest(args.manifest)
        shard = orchestrator.parse_shard(args.shard)
    except orchestrator.OrchestratorError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    clients = []
    try:
        for endpoint in args.endpoint or ():
            clients.append(
                ServeClient.resolve(endpoint=endpoint,
                                    timeout=args.serve_timeout)
            )
        for endpoint_file in args.endpoint_file or ():
            clients.append(
                ServeClient.resolve(endpoint_file=endpoint_file,
                                    timeout=args.serve_timeout)
            )
    except ServeError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1

    def log(message: str) -> None:
        print(f"[shard {args.shard}] {message}", flush=True)

    try:
        summary = orchestrator.run_shard(
            manifest,
            args.jobs_dir,
            shard=shard,
            clients=clients or None,
            max_jobs=args.max_jobs,
            log=log,
        )
    except (orchestrator.OrchestratorError, ServeError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    print(
        f"shard {args.shard}: ran {summary['run']}, "
        f"skipped {summary['skipped']} already-done, "
        f"recomputed {summary['stale']} stale"
    )
    return 0


def cmd_bench_merge(args: argparse.Namespace) -> int:
    from .bench import orchestrator

    try:
        manifest = orchestrator.load_manifest(args.manifest)
        merged = orchestrator.merge_results(
            manifest, args.jobs_dir, allow_partial=args.allow_partial
        )
    except orchestrator.OrchestratorError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    orchestrator.write_merged(merged, args.output)
    done = sum(len(flows) for flows in merged["rows"].values())
    print(
        f"merged {done}/{len(manifest['jobs'])} jobs -> {args.output}"
    )
    return 0


def cmd_bench_report(args: argparse.Namespace) -> int:
    from .bench import orchestrator

    merged = orchestrator.load_merged(args.input)
    if args.experiments:
        try:
            orchestrator.update_experiments(args.experiments, merged)
        except orchestrator.OrchestratorError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 1
        print(f"updated Table 2 section of {args.experiments}")
    else:
        print(orchestrator.render_report(merged), end="")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Lookahead logic synthesis (DAC 2009 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_stats = sub.add_parser("stats", help="print circuit statistics")
    p_stats.add_argument("input")
    _add_arrival_args(p_stats)
    p_stats.set_defaults(func=cmd_stats)

    p_opt = sub.add_parser("optimize", help="run an optimization flow")
    p_opt.add_argument("input")
    p_opt.add_argument("-o", "--output")
    p_opt.add_argument("--flow", choices=sorted(FLOWS), default="lookahead")
    p_opt.add_argument(
        "--no-verify", action="store_true",
        help="skip the post-optimization equivalence check",
    )
    p_opt.add_argument(
        "--profile", action="store_true",
        help="print perf telemetry (rounds, cache hit rates, worker "
             "utilization, per-phase wall time) after the run",
    )
    p_opt.add_argument(
        "--workers", type=int, metavar="N",
        help=f"worker processes for parallel lookahead rounds "
             f"(overrides ${perf.WORKERS_ENV}; 1 = serial)",
    )
    p_opt.add_argument(
        "--spcf-tier",
        choices=("auto", "exact", "overapprox", "signature"),
        default="auto",
        help="SPCF kernel tier ceiling: auto degrades exact -> "
             "overapprox -> signature by cone support size; "
             "exact/overapprox pin the DP flavour; signature forces the "
             "timed-simulation estimate (lookahead flows only)",
    )
    p_opt.add_argument(
        "--no-spcf-prefilter", action="store_true",
        help="disable the floating-mode arrival bound that prunes "
             "provably-empty SPCF DP entries (results are identical; "
             "useful for timing comparisons)",
    )
    p_opt.add_argument(
        "--area-effort", choices=("low", "medium", "high"),
        default="medium",
        help="post-round area-recovery effort: low = SAT sweeping only, "
             "medium adds one incremental redundancy-removal pass, high "
             "iterates both with enlarged budgets (lookahead flows only)",
    )
    p_opt.add_argument(
        "--no-area-recovery", action="store_true",
        help="skip post-round area recovery entirely "
             "(lookahead flows only)",
    )
    p_opt.add_argument(
        "--sat-portfolio", choices=("off", "sprint", "race"),
        default="off",
        help="race diversified solver configs on SAT-bound care and "
             "redundancy queries: sprint tries a small conflict budget "
             "on the primary config before escalating, race round-robins "
             "the whole portfolio; off reproduces the single-config flow "
             "bit-for-bit (lookahead flows only)",
    )
    p_opt.add_argument(
        "--store", nargs="?", const="", default=None, metavar="PATH",
        help="persist memo-layer results (SPCFs, rejected cones, UNSAT "
             "verdicts, witnesses, redundancy proofs) in an on-disk "
             "store so later runs start warm; with no PATH uses "
             "$REPRO_STORE or ~/.cache/repro/results.db (lookahead "
             "flows only; warm runs are bit-identical in QoR)",
    )
    p_opt.add_argument(
        "--no-store", action="store_true",
        help="force a fully process-local run even when $REPRO_STORE "
             "is set",
    )
    p_opt.add_argument(
        "--walk-modes", metavar="MODE,...", default=None,
        help="comma-separated critical-walk strategies (subset of "
             "target,full; default: the optimizer's own — lookahead "
             "flows only)",
    )
    p_opt.add_argument(
        "--rank", choices=("off", "log", "prune"), default="off",
        help="learned candidate ranking: off reproduces the unranked "
             "flow bit-for-bit, log records per-candidate features and "
             "outcomes (see --rank-data), prune skips candidates below "
             "the threshold of --rank-model before any SPCF work "
             "(lookahead flows only)",
    )
    p_opt.add_argument(
        "--rank-model", metavar="PATH",
        help="rank model artifact from `repro rank fit` (required with "
             "--rank prune)",
    )
    p_opt.add_argument(
        "--rank-data", metavar="PATH",
        help="JSONL file appended with one feature/outcome row per "
             "candidate under --rank log",
    )
    _add_arrival_args(p_opt)
    p_opt.set_defaults(func=cmd_optimize)

    p_rank = sub.add_parser(
        "rank", help="fit candidate-ranking models from --rank log data"
    )
    rank_sub = p_rank.add_subparsers(dest="rank_command", required=True)
    pr_fit = rank_sub.add_parser(
        "fit", help="fit a ranking model from logged datasets"
    )
    pr_fit.add_argument(
        "--data", action="append", required=True, metavar="PATH",
        help="JSONL dataset from `repro optimize --rank log --rank-data` "
             "(repeatable; rows are concatenated)",
    )
    pr_fit.add_argument(
        "-o", "--output", required=True, metavar="PATH",
        help="model artifact to write (versioned JSON)",
    )
    pr_fit.add_argument(
        "--target-recall", type=float, default=1.0, metavar="R",
        help="fraction of training accepts the threshold must keep "
             "(default 1.0: never prune anything the log run accepted)",
    )
    pr_fit.add_argument(
        "--store", nargs="?", const="", default=None, metavar="PATH",
        help="also record the artifact in the result store's rank_model "
             "namespace, keyed by fingerprint (no PATH: $REPRO_STORE or "
             "~/.cache/repro/results.db)",
    )
    pr_fit.set_defaults(func=cmd_rank_fit)

    p_cache = sub.add_parser(
        "cache", help="inspect or reset the persistent result store"
    )
    p_cache.add_argument(
        "action", choices=("stats", "clear", "path"),
        help="stats: per-namespace entry counts; clear: drop entries; "
             "path: print the store location",
    )
    p_cache.add_argument(
        "--store", metavar="PATH",
        help="store database ($REPRO_STORE or ~/.cache/repro/results.db "
             "by default)",
    )
    p_cache.add_argument(
        "--namespace", metavar="NS",
        help="restrict 'clear' to one namespace (e.g. spcf, unsat)",
    )
    p_cache.set_defaults(func=cmd_cache)

    p_serve = sub.add_parser(
        "serve",
        help="run the long-lived optimization daemon on the result store",
    )
    p_serve.add_argument(
        "--store", metavar="PATH",
        help="store database backing the daemon ($REPRO_STORE or "
             "~/.cache/repro/results.db by default); the endpoint file "
             "<store>.serve.json advertises the daemon to `repro submit`",
    )
    p_serve.add_argument(
        "--no-store", action="store_true",
        help="serve from memory only (answers are not persisted)",
    )
    p_serve.add_argument(
        "--workers", type=int, metavar="N",
        help=f"worker processes per optimizer (overrides "
             f"${perf.WORKERS_ENV}; 1 = serial)",
    )
    p_serve.add_argument("--host", default="127.0.0.1")
    p_serve.add_argument(
        "--port", type=int, default=0,
        help="listening port (default 0 = ephemeral, advertised via the "
             "endpoint file)",
    )
    p_serve.add_argument(
        "--job-timeout", type=float, default=600.0, metavar="SECONDS",
        help="per-job watchdog budget (default 600)",
    )
    p_serve.add_argument(
        "--max-batch", type=int, default=8, metavar="N",
        help="max queued same-config jobs drained onto one warm "
             "optimizer (default 8)",
    )
    p_serve.add_argument(
        "--queue-limit", type=int, default=256, metavar="N",
        help="queued-job bound before submits are rejected (default 256)",
    )
    p_serve.add_argument(
        "--runners", type=int, default=1, metavar="N",
        help="concurrent job-runner threads (default 1; per-job store "
             "hit-rates are approximate above 1)",
    )
    p_serve.add_argument(
        "--endpoint-file", metavar="FILE",
        help="override where the daemon advertises HOST:PORT",
    )
    p_serve.add_argument(
        "--status", action="store_true",
        help="probe the running daemon and print its status as JSON",
    )
    p_serve.add_argument(
        "--stop", action="store_true",
        help="ask the running daemon to drain and exit",
    )
    p_serve.add_argument(
        "--endpoint", metavar="HOST:PORT",
        help="daemon address for --status/--stop (default: the "
             "endpoint file)",
    )
    p_serve.set_defaults(func=cmd_serve)

    p_submit = sub.add_parser(
        "submit",
        help="submit a circuit to a running optimize daemon",
    )
    p_submit.add_argument("input")
    p_submit.add_argument("-o", "--output")
    p_submit.add_argument(
        "--flow", choices=("lookahead", "lookahead-only"),
        default="lookahead",
        help="served flow (daemon-side defaults mirror `repro optimize`)",
    )
    _add_arrival_args(p_submit)
    p_submit.add_argument(
        "--timeout", type=float, metavar="SECONDS",
        help="per-job budget enforced by the daemon watchdog "
             "(daemon default when omitted)",
    )
    p_submit.add_argument(
        "--verify", action="store_true",
        help="ask the daemon to equivalence-check the answer before "
             "returning it",
    )
    p_submit.add_argument(
        "--store", metavar="PATH",
        help="store whose endpoint file locates the daemon "
             "($REPRO_STORE or ~/.cache/repro/results.db by default)",
    )
    p_submit.add_argument(
        "--endpoint", metavar="HOST:PORT",
        help="daemon address (overrides endpoint-file discovery)",
    )
    p_submit.add_argument(
        "--endpoint-file", metavar="FILE",
        help="explicit endpoint file written by `repro serve`",
    )
    p_submit.set_defaults(func=cmd_submit)

    p_map = sub.add_parser("map", help="technology-map to the 70nm library")
    p_map.add_argument("input")
    p_map.add_argument("-o", "--output", help="gate-level Verilog output")
    p_map.set_defaults(func=cmd_map)

    p_bench = sub.add_parser(
        "bench",
        help="benchmark circuits and the sharded Table 2 orchestrator",
        description="With no subcommand: list/emit the benchmark "
                    "circuits.  The plan/run/merge/report subcommands "
                    "drive the sharded Table 2 benchmark lifecycle.",
    )
    p_bench.add_argument("--circuit")
    p_bench.add_argument("--output-dir")
    p_bench.set_defaults(func=cmd_bench)
    bench_sub = p_bench.add_subparsers(dest="bench_command")

    pb_plan = bench_sub.add_parser(
        "plan", help="expand the per-circuit x per-flow job manifest"
    )
    pb_plan.add_argument(
        "-o", "--output", default="table2_manifest.json", metavar="FILE",
        help="manifest path (default table2_manifest.json)",
    )
    pb_plan.add_argument(
        "--circuits", metavar="NAME,...",
        help="restrict to these circuits (default: all 15)",
    )
    pb_plan.add_argument(
        "--flows", metavar="FLOW,...",
        help="restrict to these flows (default: SIS,ABC,DC,Lookahead)",
    )
    pb_plan.add_argument(
        "--quick", action="store_true",
        help="plan only the small QUICK_SET circuits",
    )
    pb_plan.set_defaults(func=cmd_bench_plan)

    pb_run = bench_sub.add_parser(
        "run", help="execute one shard of a planned manifest (resumable)"
    )
    pb_run.add_argument(
        "--manifest", default="table2_manifest.json", metavar="FILE"
    )
    pb_run.add_argument(
        "--jobs-dir", default="table2_jobs", metavar="DIR",
        help="per-job result artifacts (default table2_jobs/)",
    )
    pb_run.add_argument(
        "--shard", default="1/1", metavar="K/N",
        help="run shard K of N (1-based; default 1/1 = everything)",
    )
    pb_run.add_argument(
        "--endpoint", action="append", metavar="HOST:PORT",
        help="dispatch Lookahead jobs to this `repro serve` daemon "
             "(repeatable; round-robin across daemons)",
    )
    pb_run.add_argument(
        "--endpoint-file", action="append", metavar="FILE",
        help="like --endpoint, via an endpoint file written by "
             "`repro serve`",
    )
    pb_run.add_argument(
        "--serve-timeout", type=float, default=3600.0, metavar="SECONDS",
        help="per-job budget for served jobs (default 3600)",
    )
    pb_run.add_argument(
        "--workers", type=int, metavar="N",
        help=f"worker processes for local jobs (overrides "
             f"${perf.WORKERS_ENV}; 1 = serial)",
    )
    pb_run.add_argument(
        "--max-jobs", type=int, metavar="N",
        help="stop after executing N jobs (skips not counted)",
    )
    pb_run.set_defaults(func=cmd_bench_run)

    pb_merge = bench_sub.add_parser(
        "merge", help="fold per-job artifacts into BENCH_table2.json"
    )
    pb_merge.add_argument(
        "--manifest", default="table2_manifest.json", metavar="FILE"
    )
    pb_merge.add_argument(
        "--jobs-dir", default="table2_jobs", metavar="DIR"
    )
    pb_merge.add_argument(
        "-o", "--output", default="BENCH_table2.json", metavar="FILE"
    )
    pb_merge.add_argument(
        "--allow-partial", action="store_true",
        help="merge even when jobs are missing or stale",
    )
    pb_merge.set_defaults(func=cmd_bench_merge)

    pb_report = bench_sub.add_parser(
        "report", help="render the merged table (stdout or EXPERIMENTS.md)"
    )
    pb_report.add_argument(
        "-i", "--input", default="BENCH_table2.json", metavar="FILE"
    )
    pb_report.add_argument(
        "--experiments", metavar="FILE",
        help="splice the table between the TABLE2 markers of this file "
             "instead of printing it",
    )
    pb_report.set_defaults(func=cmd_bench_report)

    p_fuzz = sub.add_parser(
        "fuzz",
        help="differential fuzzing of the whole flow (repro.verify)",
    )
    p_fuzz.add_argument(
        "--seed", type=int, default=0,
        help="base seed; every case is reproducible from (seed, index)",
    )
    p_fuzz.add_argument(
        "--budget", type=float, default=60.0, metavar="SECONDS",
        help="wall-clock budget for the run (default 60)",
    )
    p_fuzz.add_argument(
        "--max-cases", type=int, metavar="N",
        help="stop after N cases even if budget remains",
    )
    p_fuzz.add_argument(
        "--check", action="append", metavar="NAME",
        help="restrict to this invariant (repeatable; see --list-checks)",
    )
    p_fuzz.add_argument(
        "--list-checks", action="store_true",
        help="print the registered invariant names and exit",
    )
    p_fuzz.add_argument(
        "--artifact-dir", default="tests/regressions", metavar="DIR",
        help="where shrunk failure artifacts are written "
             "(default tests/regressions)",
    )
    p_fuzz.add_argument(
        "--no-shrink", action="store_true",
        help="record the raw failing circuit without ddmin shrinking",
    )
    p_fuzz.add_argument(
        "--keep-going", action="store_true",
        help="record every failure instead of stopping at the first",
    )
    p_fuzz.add_argument(
        "--profile", action="store_true",
        help="print perf telemetry (verify.* counters) after the run",
    )
    p_fuzz.set_defaults(func=cmd_fuzz)

    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    raise SystemExit(main())
