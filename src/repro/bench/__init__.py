"""Benchmark circuit suite (Table 2 stand-ins) and the bench orchestrator."""

from . import blocks
from .fabric import control_fabric
from .circuits import BENCHMARKS

__all__ = ["blocks", "control_fabric", "BENCHMARKS"]
