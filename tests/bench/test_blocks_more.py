"""Additional block-level tests: widths, encodings, datapath ops."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.aig import AIG, evaluate
from repro.bench import blocks


class TestHammingWidths:
    @pytest.mark.parametrize("width", [4, 8, 11, 16, 26])
    def test_check_bit_count(self, width):
        r, positions = blocks.hamming_positions(width)
        assert len(positions) == width
        assert (1 << r) >= width + r + 1
        assert (1 << (r - 1)) < width + (r - 1) + 1

    @pytest.mark.parametrize("width", [4, 8, 11])
    def test_correction_at_width(self, width):
        import random

        rng = random.Random(width)
        r, _ = blocks.hamming_positions(width)
        enc = AIG()
        data_in = [enc.add_pi() for _ in range(width)]
        checks = blocks.hamming_checks(enc, data_in)
        overall = blocks.parity_tree(enc, list(data_in) + checks)
        for c in checks:
            enc.add_po(c)
        enc.add_po(overall)

        dec = AIG()
        d = [dec.add_pi() for _ in range(width)]
        p = [dec.add_pi() for _ in range(r + 1)]
        corrected, _syn, single, double = blocks.secded_correct(dec, d, p)
        for c in corrected:
            dec.add_po(c)
        dec.add_po(single)
        dec.add_po(double)

        for _ in range(10):
            word = [bool(rng.randint(0, 1)) for _ in range(width)]
            check_bits = evaluate(enc, word)
            # Clean word: no errors flagged, data passes through.
            out = evaluate(dec, word + check_bits)
            assert out[:width] == word
            assert not out[width] and not out[width + 1]
            # Single-bit error: corrected.
            flip = rng.randrange(width)
            bad = list(word)
            bad[flip] = not bad[flip]
            out = evaluate(dec, bad + check_bits)
            assert out[:width] == word
            assert out[width] and not out[width + 1]
            # Double error: detected, not miscorrected as single.
            flip2 = (flip + 1) % width
            worse = list(bad)
            worse[flip2] = not worse[flip2]
            out = evaluate(dec, worse + check_bits)
            assert out[width + 1] and not out[width]


class TestEncodeOnehot:
    @given(st.integers(1, 12))
    @settings(deadline=None, max_examples=10)
    def test_binary_encoding(self, n):
        import math

        width = max(1, math.ceil(math.log2(n)))
        aig = AIG()
        onehot = [aig.add_pi() for _ in range(n)]
        for bit in blocks.encode_onehot(aig, onehot, width):
            aig.add_po(bit)
        for hot in range(n):
            bits = [i == hot for i in range(n)]
            out = evaluate(aig, bits)
            got = sum(1 << i for i, b in enumerate(out) if b)
            assert got == hot


class TestAluSlice:
    @pytest.mark.parametrize("op,expected", [
        ((0, 0), lambda a, b, c: (a + b + c) & 0xF),
        ((1, 0), lambda a, b, c: a & b),
        ((0, 1), lambda a, b, c: a | b),
        ((1, 1), lambda a, b, c: a ^ b),
    ])
    def test_all_ops(self, op, expected):
        aig = AIG()
        a = [aig.add_pi() for _ in range(4)]
        b = [aig.add_pi() for _ in range(4)]
        opins = [aig.add_pi() for _ in range(2)]
        cin = aig.add_pi()
        result, cout = blocks.alu_slice(aig, a, b, opins, cin)
        for r in result:
            aig.add_po(r)
        for av in (0b0000, 0b1010, 0b1111):
            for bv in (0b0011, 0b1111):
                for c in (0, 1):
                    bits = (
                        [bool((av >> i) & 1) for i in range(4)]
                        + [bool((bv >> i) & 1) for i in range(4)]
                        + [bool(op[0]), bool(op[1]), bool(c)]
                    )
                    out = evaluate(aig, bits)
                    got = sum(1 << i for i, x in enumerate(out) if x)
                    assert got == expected(av, bv, c) & 0xF


class TestDecoder:
    def test_exhaustive(self):
        aig = AIG()
        sel = [aig.add_pi() for _ in range(3)]
        for line in blocks.decoder(aig, sel):
            aig.add_po(line)
        for v in range(8):
            bits = [bool((v >> i) & 1) for i in range(3)]
            out = evaluate(aig, bits)
            assert out == [i == v for i in range(8)]


class TestCamMatch:
    def test_match_requires_valid(self):
        aig = AIG()
        key = [aig.add_pi() for _ in range(4)]
        entry = [aig.add_pi() for _ in range(4)]
        valid = aig.add_pi()
        aig.add_po(blocks.cam_match(aig, key, entry, valid))
        same = [True, False, True, True]
        assert evaluate(aig, same + same + [True]) == [True]
        assert evaluate(aig, same + same + [False]) == [False]
        different = [True, True, True, True]
        assert evaluate(aig, same + different + [True]) == [False]
