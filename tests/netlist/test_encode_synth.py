"""Tests for network CNF encoding and network->AIG synthesis."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.aig import AIG, po_tts
from repro.netlist import (
    ArrivalAwareBuilder,
    Network,
    encode_network,
    network_to_aig,
    renode,
    synthesize_node,
)
from repro.sat import Solver
from repro.tt import TruthTable

from ..aig.test_aig import random_aig


class TestEncodeNetwork:
    @given(st.integers(0, 15))
    @settings(deadline=None, max_examples=8)
    def test_encoding_agrees_with_evaluation(self, seed):
        aig = random_aig(seed, n_pis=4, n_nodes=20, n_pos=2)
        net = renode(aig, k=4)
        solver = Solver()
        var_of = encode_network(solver, net)
        # For every input assignment, the forced model must match evaluate().
        for m in range(1 << len(net.pis)):
            assumptions = [
                (var_of[pi] if (m >> i) & 1 else -var_of[pi])
                for i, pi in enumerate(net.pis)
            ]
            assert solver.solve(assumptions)
            values = net.evaluate([bool((m >> i) & 1) for i in range(len(net.pis))])
            for (nid, neg), expected in zip(net.pos, values):
                got = solver.model_value(var_of[nid])
                if neg:
                    got = not got
                assert got == expected

    def test_constant_nodes(self):
        net = Network()
        net.add_pi("x")
        one = net.add_const(True)
        zero = net.add_const(False)
        net.add_po(one)
        net.add_po(zero)
        solver = Solver()
        var_of = encode_network(solver, net)
        assert solver.solve()
        assert solver.model_value(var_of[one]) is True
        assert solver.model_value(var_of[zero]) is False


class TestSynthesis:
    @given(st.integers(1, 5), st.integers(0, 500))
    @settings(deadline=None, max_examples=25)
    def test_synthesize_node_matches_tt(self, nvars, seed):
        import random

        rng = random.Random(seed)
        tt = TruthTable(rng.getrandbits(1 << nvars), nvars)
        aig = AIG()
        builder = ArrivalAwareBuilder(aig)
        ins = [aig.add_pi() for _ in range(nvars)]
        lit = synthesize_node(builder, tt, ins)
        aig.add_po(lit)
        assert po_tts(aig)[0] == tt

    def test_arrival_aware_tree_prefers_early_merge(self):
        # One late input among 4: depth should be late_level + 1, not +2.
        aig = AIG()
        builder = ArrivalAwareBuilder(aig)
        xs = [aig.add_pi() for _ in range(5)]
        late = aig.and_(aig.and_(xs[0], xs[1]), aig.and_(xs[2], xs[3]))
        out = builder.balanced([late, xs[4], xs[4] ^ 1 ^ 1], "and")
        # late has level 2; merging the two early inputs first keeps
        # total depth at 3 instead of 4.
        assert builder.level(out) == 3

    def test_builder_self_heals_after_external_nodes(self):
        aig = AIG()
        builder = ArrivalAwareBuilder(aig)
        a, b = aig.add_pi(), aig.add_pi()
        # Create nodes behind the builder's back.
        deep = aig.and_(aig.and_(a, b), aig.and_(a ^ 1, b) ^ 1)
        assert builder.level(deep) == 2
