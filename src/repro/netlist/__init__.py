"""Technology-independent networks (the paper's representation ``T``)."""

from .network import NetNode, Network
from .levels import (
    compute_levels,
    cover_level,
    critical_inputs,
    min_sops,
    network_depth,
    node_level,
    tree_level,
)
from .renode import renode
from .encode import encode_network
from .to_aig import (
    ArrivalAwareBuilder,
    network_to_aig,
    synthesize_into,
    synthesize_node,
)

__all__ = [
    "NetNode",
    "Network",
    "compute_levels",
    "cover_level",
    "critical_inputs",
    "min_sops",
    "network_depth",
    "node_level",
    "tree_level",
    "renode",
    "encode_network",
    "synthesize_into",
    "ArrivalAwareBuilder",
    "network_to_aig",
    "synthesize_node",
]
