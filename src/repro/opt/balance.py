"""AND-tree balancing (ABC's ``balance``).

Maximal single-fanout AND trees are collected and rebuilt as arrival-aware
(Huffman-merged) trees, which minimizes tree depth for the given leaf
arrival times.
"""

from __future__ import annotations

import heapq
from typing import Dict, List

from ..aig import AIG, CONST0, fanout_counts, lit_neg, lit_not, lit_notif, lit_var


def balance(aig: AIG) -> AIG:
    """Depth-minimizing AND-tree rebalance; function-preserving."""
    counts = fanout_counts(aig)
    dest = AIG()
    mapping: Dict[int, int] = {0: CONST0}
    level: Dict[int, int] = {0: 0}
    for var, name in zip(aig.pis, aig.pi_names):
        mapping[var] = dest.add_pi(name)
        level[lit_var(mapping[var])] = 0

    def new_level(lit: int) -> int:
        return level.get(lit_var(lit), 0)

    def collect_leaves(var: int, root: bool, leaves: List[int]) -> None:
        """Leaves of the maximal AND tree rooted at ``var``.

        Recursion continues through non-complemented, single-fanout AND
        fan-ins (they belong to this tree exclusively).
        """
        f0, f1 = aig.fanins(var)
        for lit in (f0, f1):
            v = lit_var(lit)
            if (
                not lit_neg(lit)
                and aig.is_and(v)
                and counts[v] == 1
            ):
                collect_leaves(v, False, leaves)
            else:
                leaves.append(lit)

    def build_tree(leaf_lits: List[int]) -> int:
        heap = [(new_level(l), i, l) for i, l in enumerate(leaf_lits)]
        heapq.heapify(heap)
        counter = len(heap)
        while len(heap) > 1:
            _la, _ia, a = heapq.heappop(heap)
            _lb, _ib, b = heapq.heappop(heap)
            out = dest.and_(a, b)
            ov = lit_var(out)
            if ov not in level:
                level[ov] = 1 + max(new_level(a), new_level(b))
            heapq.heappush(heap, (new_level(out), counter, out))
            counter += 1
        return heap[0][2]

    for var in aig.and_vars():
        leaves: List[int] = []
        collect_leaves(var, True, leaves)
        mapped_leaves = [
            lit_notif(mapping[lit_var(l)], lit_neg(l)) for l in leaves
        ]
        if any(l == CONST0 for l in mapped_leaves):
            mapping[var] = CONST0
            continue
        mapped_leaves = [l for l in mapped_leaves if l != lit_not(CONST0)]
        if not mapped_leaves:
            mapping[var] = lit_not(CONST0)
            continue
        mapping[var] = build_tree(mapped_leaves)

    for po, name in zip(aig.pos, aig.po_names):
        dest.add_po(lit_notif(mapping[lit_var(po)], lit_neg(po)), name)
    return dest.extract()
