"""Persistent SQLite result store (WAL mode, schema-versioned).

One database file holds every namespace as rows of a single ``entries``
table keyed by ``(ns, key)``; the key is the canonical text encoding of
:func:`repro.store.serialize.encode_key` and the value a versioned codec
payload.  Design points:

* **WAL journaling** — readers never block the (single) writer and vice
  versa, which is exactly the daemon-shaped access pattern the store is
  built for: many concurrent warm readers, occasional writers.  Multiple
  writers are *safe* (SQLite serializes them through the write lock and a
  generous busy timeout) just not fast; a loaded deployment should keep
  one writer per namespace.
* **Schema versioning** — ``meta`` records the schema and payload-codec
  versions this file was written with.  A mismatch on open wipes the
  tables and starts cold: a stale format is self-invalidating, never
  misread.
* **Corruption = cold start, never a crash** — a file that does not
  parse as a database (truncated, garbage, wrong format) is deleted and
  rebuilt; a row that fails payload decoding reads as a miss.  Losing a
  cache is always acceptable; serving a wrong payload or taking the
  optimizer down is not.
* **Fork safety** — SQLite connections must not cross ``fork()``.  Every
  operation checks the owning PID and transparently reopens in a child
  process (the parent's connection is dropped unclosed there; closing it
  from the child would corrupt the parent's file descriptors).

Latency of disk hits is observed in the ``store.load`` histogram so
``--profile`` answers "is the warm path actually fast".
"""

from __future__ import annotations

import os
import sqlite3
import time
from typing import Any, Dict, Optional

from .. import perf
from .base import MISSING, ResultStore
from .serialize import (
    PAYLOAD_VERSION,
    StoreDecodeError,
    dumps,
    encode_key,
    key_fingerprint,
    loads,
)

SCHEMA_VERSION = 1
"""Bump on any table-layout change; old files then rebuild cold."""

BUSY_TIMEOUT_MS = 10_000
"""How long a writer waits on the database lock before erroring."""


class SqliteStore(ResultStore):
    """Durable result store over one SQLite file."""

    persistent = True

    def __init__(self, path: str) -> None:
        self.path = path
        self._conn: Optional[sqlite3.Connection] = None
        self._pid = -1
        self._connect()

    # -- connection & schema lifecycle -------------------------------------

    def _connect(self) -> None:
        parent = os.path.dirname(os.path.abspath(self.path))
        os.makedirs(parent, exist_ok=True)
        try:
            self._conn = self._open()
        except sqlite3.Error:
            # Unreadable database: rebuild cold rather than crash.
            self._rebuild()
        self._pid = os.getpid()

    def _open(self) -> sqlite3.Connection:
        conn = sqlite3.connect(
            self.path,
            timeout=BUSY_TIMEOUT_MS / 1000.0,
            isolation_level=None,  # autocommit; puts are single statements
            check_same_thread=False,
        )
        try:
            conn.execute("PRAGMA journal_mode=WAL")
            conn.execute("PRAGMA synchronous=NORMAL")
            conn.execute(f"PRAGMA busy_timeout={BUSY_TIMEOUT_MS}")
            conn.execute(
                "CREATE TABLE IF NOT EXISTS meta ("
                " key TEXT PRIMARY KEY, value TEXT)"
            )
            conn.execute(
                "CREATE TABLE IF NOT EXISTS entries ("
                " ns TEXT NOT NULL,"
                " key TEXT NOT NULL,"
                " fp TEXT NOT NULL,"
                " value BLOB NOT NULL,"
                " PRIMARY KEY (ns, key))"
            )
            conn.execute(
                "CREATE INDEX IF NOT EXISTS entries_fp ON entries (ns, fp)"
            )
            row = conn.execute(
                "SELECT value FROM meta WHERE key = 'version'"
            ).fetchone()
            version = f"{SCHEMA_VERSION}.{PAYLOAD_VERSION}"
            if row is None:
                conn.execute(
                    "INSERT OR REPLACE INTO meta VALUES ('version', ?)",
                    (version,),
                )
            elif row[0] != version:
                # Foreign schema or payload format: self-invalidate.
                perf.incr("store.schema_invalidations")
                conn.execute("DELETE FROM entries")
                conn.execute(
                    "INSERT OR REPLACE INTO meta VALUES ('version', ?)",
                    (version,),
                )
        except sqlite3.Error:
            conn.close()
            raise
        return conn

    def _rebuild(self) -> None:
        """Delete the damaged file (and WAL sidecars) and start cold."""
        perf.incr("store.rebuilds")
        if self._conn is not None:
            try:
                self._conn.close()
            except sqlite3.Error:
                pass
            self._conn = None
        for suffix in ("", "-wal", "-shm"):
            try:
                os.remove(self.path + suffix)
            except OSError:
                pass
        self._conn = self._open()

    def _db(self) -> sqlite3.Connection:
        if self._pid != os.getpid():
            # Forked child: the inherited connection belongs to the
            # parent.  Drop the reference without closing and reopen.
            self._conn = None
            self._connect()
        elif self._conn is None:
            self._connect()
        return self._conn

    # -- the store protocol -------------------------------------------------

    def get(self, ns: str, key: Any) -> Any:
        start = time.perf_counter()
        try:
            row = self._db().execute(
                "SELECT value FROM entries WHERE ns = ? AND key = ?",
                (ns, encode_key(key)),
            ).fetchone()
        except sqlite3.Error:
            self._rebuild()
            return MISSING
        finally:
            perf.observe("store.load", time.perf_counter() - start)
        if row is None:
            return MISSING
        try:
            return loads(row[0])
        except StoreDecodeError:
            perf.incr("store.decode_errors")
            return MISSING

    def put(self, ns: str, key: Any, value: Any) -> None:
        payload = dumps(value)  # encode before touching the DB
        try:
            self._db().execute(
                "INSERT OR REPLACE INTO entries VALUES (?, ?, ?, ?)",
                (ns, encode_key(key), str(key_fingerprint(key)), payload),
            )
        except sqlite3.Error:
            # A failed write loses one memo entry, nothing else.
            self._rebuild()

    def invalidate(
        self, ns: Optional[str] = None, fingerprint: Optional[int] = None
    ) -> int:
        clauses, params = [], []
        if ns is not None:
            clauses.append("ns = ?")
            params.append(ns)
        if fingerprint is not None:
            clauses.append("fp = ?")
            params.append(str(fingerprint))
        sql = "DELETE FROM entries"
        if clauses:
            sql += " WHERE " + " AND ".join(clauses)
        try:
            return self._db().execute(sql, params).rowcount
        except sqlite3.Error:
            self._rebuild()
            return 0

    def stats(self) -> Dict[str, Dict[str, Any]]:
        try:
            rows = self._db().execute(
                "SELECT ns, COUNT(*) FROM entries GROUP BY ns"
            ).fetchall()
        except sqlite3.Error:
            self._rebuild()
            return {}
        return {ns: {"entries": count} for ns, count in rows}

    def file_size(self) -> int:
        try:
            return os.path.getsize(self.path)
        except OSError:
            return 0

    def close(self) -> None:
        if self._conn is not None and self._pid == os.getpid():
            try:
                self._conn.close()
            except sqlite3.Error:
                pass
        self._conn = None

    def __repr__(self) -> str:
        return f"SqliteStore({self.path!r})"
