"""Satisfiability-don't-care node minimization.

A network node's fan-ins may be correlated: input vectors that no primary
input assignment can produce are *satisfiability don't cares* (SDCs), and
the node function may be re-minimized freely over them.  This is the
classic `full_simplify`-style cleanup; it reuses the exact global-function
models, so every proved vector really is unreachable.
"""

from __future__ import annotations

from typing import Optional

from ..netlist import Network, compute_levels
from ..sop import Cube
from ..tt import TruthTable
from .simplify import complete_function

SDC_SUPPORT_LIMIT = 8
"""Nodes with more fan-ins than this are skipped (2^k vector checks)."""


def sdc_minimize(net: Network, model, max_nodes: Optional[int] = None) -> int:
    """Minimize every node against its proved-unreachable input vectors.

    ``model`` must be an exact model (truth-table or BDD domain) over the
    same network.  Returns the number of nodes changed; mutates ``net``
    and keeps ``model`` refreshed.
    """
    levels = compute_levels(net)
    changed = 0
    for nid in net.topo_order():
        if max_nodes is not None and changed >= max_nodes:
            break
        node = net.nodes[nid]
        tt = node.tt
        k = len(node.fanins)
        if tt.is_const0 or tt.is_const1 or k == 0 or k > SDC_SUPPORT_LIMIT:
            continue
        dc = TruthTable.const(False, k)
        for m in range(1 << k):
            cube = Cube.from_minterm(m, k)
            if model.count(model.cube_condition(nid, cube)) == 0:
                dc |= cube.to_tt()
        if dc.is_const0:
            continue
        fanin_levels = [levels[f] for f in node.fanins]
        new_tt = complete_function(tt & ~dc, dc, fanin_levels)
        if new_tt == tt:
            continue
        net.set_function(nid, new_tt)
        changed += 1
        model.recompute()
        levels = compute_levels(net)
    return changed
