"""The complete lookahead synthesis flow used in the paper's evaluation.

The paper implements the technique within ABC and stresses that it
"complements existing logic optimization algorithms": lookahead
decomposition runs on top of conventional optimization.  This module wires
the two together — the result is never worse than the best conventional
flow, and improves on it wherever timing-driven decomposition finds
sensitizable critical structure.
"""

from __future__ import annotations

from typing import Dict, Optional

from ..aig import AIG
from .lookahead import LookaheadOptimizer


def _make_quality(arrival_times: Optional[Dict[str, int]]):
    """Quality metric: worst PO completion time under the flow's delay
    model, then size.  With no prescribed arrivals this is exactly the
    legacy (depth, num_ands) ordering."""
    from ..timing import AigTimingEngine, resolve_arrivals

    def _quality(aig: AIG):
        model = resolve_arrivals(arrival_times)
        return (AigTimingEngine(aig, model).depth(), aig.num_ands())

    return _quality


def lookahead_flow(
    aig: AIG,
    optimizer: Optional[LookaheadOptimizer] = None,
    max_iterations: int = 4,
    arrival_times: Optional[Dict[str, int]] = None,
) -> AIG:
    """Conventional high-effort optimization alternated with decomposition.

    Each iteration takes the better of the conventional flow (which cleans
    up and rebalances the mux/window structures the decomposition
    introduced) and another batch of lookahead rounds; iteration stops at
    a fixpoint.  The result is never worse than the conventional flow
    alone, and the decomposition gets a first shot at the raw circuit,
    where long sensitizable chains are still visible.

    ``arrival_times`` (PI name -> integer arrival) puts both the optimizer
    and the quality gate in the non-uniform arrival regime; when an
    explicit ``optimizer`` is passed its own ``arrival_times`` win.
    """
    from .. import perf
    from ..opt import dc_map_effort_high

    opt = optimizer or LookaheadOptimizer(
        max_rounds=16, max_outputs_per_round=8, arrival_times=arrival_times
    )
    _quality = _make_quality(opt.arrival_times)
    current = aig.extract()
    # The conventional candidate is recomputed only when `current` actually
    # changed under it.  When the conventional flow itself wins an
    # iteration, its output doubles as the next iteration's conventional
    # candidate: dc_map_effort_high keeps its input among its internal
    # candidates, so rerunning it on its own output cannot do better than
    # what the quality-gate below would accept anyway.
    conventional = None
    for _ in range(max_iterations):
        perf.incr("flow.iterations")
        if conventional is None:
            with perf.timer("phase.conventional"):
                conventional = dc_map_effort_high(current)
        else:
            perf.incr("flow.conventional.reused")
        candidates = [conventional, opt.optimize(current)]
        candidate = min(candidates, key=_quality)
        if _quality(candidate) >= _quality(current):
            break
        conventional = candidate if candidate is conventional else None
        current = candidate
    return current
