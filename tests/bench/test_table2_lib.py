"""The shared Table 2 row library (repro.bench.table2)."""

from __future__ import annotations

import pytest

from repro.adders import ripple_carry_adder
from repro.bench import BENCHMARKS
from repro.bench.table2 import (
    BASELINES,
    BOUNDED_EFFORT_MAX_ANDS,
    FLOW_ORDER,
    FULL_EFFORT_MAX_ANDS,
    GOLDEN_QUICK,
    GOLDEN_W1,
    QUICK_SET,
    effort_options,
    flow_functions,
    get_circuit,
    golden_area_effort,
    golden_config,
    measure,
    run_flow_row,
)
from repro.core.flow import normalize_job_config


def test_flow_functions_cover_the_table():
    flows = flow_functions()
    assert tuple(sorted(flows)) == tuple(sorted(FLOW_ORDER))
    assert set(BASELINES) < set(FLOW_ORDER)


def test_quick_set_is_a_table2_subset():
    assert set(QUICK_SET) <= set(BENCHMARKS)


def test_effort_options_tiers():
    assert effort_options(FULL_EFFORT_MAX_ANDS) == {}
    bounded = effort_options(FULL_EFFORT_MAX_ANDS + 1)
    minimal = effort_options(BOUNDED_EFFORT_MAX_ANDS + 1)
    assert bounded["max_iterations"] == 2
    assert minimal["max_iterations"] == 1
    assert minimal["max_rounds"] < bounded["max_rounds"]
    # Every tier is a valid serve-job options payload — the contract
    # that lets the orchestrator ship effort to a daemon.
    for options in (bounded, minimal):
        normalize_job_config({"flow": "lookahead", **options})


def test_golden_config_selection():
    assert golden_config("C432", 223) == GOLDEN_W1
    assert golden_config("i10", 5300) == GOLDEN_QUICK
    # rot is pinned to the BENCH_speed w1 config despite its size.
    assert golden_config("rot", 2350) == GOLDEN_W1
    assert golden_area_effort(GOLDEN_W1) == "high"
    assert golden_area_effort(GOLDEN_QUICK) == "medium"


def test_get_circuit_memoizes_with_bound():
    get_circuit.cache_clear()
    a = get_circuit("C432")
    assert get_circuit("C432") is a
    info = get_circuit.cache_info()
    assert info.maxsize is not None  # bounded, not the old module global


def test_measure_rejects_non_equivalent():
    aig = ripple_carry_adder(2)
    broken = ripple_carry_adder(2)
    broken.pos[0] ^= 1  # negate one output: same interface, wrong function
    with pytest.raises(AssertionError, match="not equivalent"):
        measure(aig, broken, "broken")


def test_run_flow_row_unknown_flow():
    with pytest.raises(ValueError, match="unknown Table 2 flow"):
        run_flow_row("C432", "Magic", aig=ripple_carry_adder(2))


def test_run_flow_row_metrics_shape():
    row = run_flow_row("tiny", "DC", aig=ripple_carry_adder(2))
    assert set(row) == {"gates", "levels", "delay_ps", "power_uw"}
    assert row["gates"] > 0 and row["levels"] > 0
